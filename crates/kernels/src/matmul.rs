//! Parallel dense matmul `C = A * B`.

/// `C[m,n] = A[m,k] * B[k,n]`, parallelized over rows of `C` with `threads`
/// workers. Inner loops are ordered `i-k-j` for unit-stride access to `B`
/// and `C` (auto-vectorizable).
///
/// ```
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [5.0, 6.0, 7.0, 8.0]; // 2x2
/// let mut c = [0.0f32; 4];
/// nnrt_kernels::matmul::matmul(2, &a, &b, &mut c, 2, 2, 2);
/// assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
/// ```
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul(threads: usize, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    if c.is_empty() {
        return;
    }
    // Split C into disjoint row bands, one mutable slice per worker chunk.
    let bands: Vec<(usize, &mut [f32])> = {
        let chunk = m.div_ceil(threads.clamp(1, m.max(1)));
        c.chunks_mut(chunk.max(1) * n)
            .enumerate()
            .map(|(i, band)| (i * chunk.max(1), band))
            .collect()
    };
    let nbands = bands.len();
    std::thread::scope(|s| {
        for (row0, band) in bands {
            if nbands == 1 {
                matmul_band(a, b, band, row0, k, n);
            } else {
                s.spawn(move || matmul_band(a, b, band, row0, k, n));
            }
        }
    });
}

fn matmul_band(a: &[f32], b: &[f32], c_band: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = c_band.len() / n;
    for i in 0..rows {
        let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let crow = &mut c_band[i * n..(i + 1) * n];
        crow.fill(0.0);
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C[m,n] = A^T[k,m]^T * B[k,n]` — i.e. `A` is stored `[k, m]` and used
/// transposed (the dW computation of a dense layer).
pub fn matmul_at_b(
    threads: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), k * m, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    if c.is_empty() {
        return;
    }
    // Disjoint row bands of C, one per worker.
    let bands: Vec<(usize, &mut [f32])> = {
        let chunk = m.div_ceil(threads.clamp(1, m.max(1)));
        c.chunks_mut(chunk.max(1) * n)
            .enumerate()
            .map(|(i, band)| (i * chunk.max(1), band))
            .collect()
    };
    let nbands = bands.len();
    std::thread::scope(|s| {
        for (row0, band) in bands {
            let mut work = move || {
                let rows = band.len() / n;
                for i in 0..rows {
                    let crow = &mut band[i * n..(i + 1) * n];
                    crow.fill(0.0);
                    for kk in 0..k {
                        let aik = a[kk * m + row0 + i];
                        let brow = &b[kk * n..(kk + 1) * n];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            };
            if nbands == 1 {
                work();
            } else {
                s.spawn(work);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matches_reference_for_all_thread_counts() {
        let (m, k, n) = (13, 17, 19);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let expect = reference(&a, &b, m, k, n);
        for threads in [1, 2, 3, 8, 64] {
            let mut c = vec![0.0f32; m * n];
            matmul(threads, &a, &b, &mut c, m, k, n);
            assert_eq!(c, expect, "threads={threads}");
        }
    }

    #[test]
    fn transposed_variant_matches() {
        let (m, k, n) = (6, 9, 4);
        // A stored [k, m].
        let a_t: Vec<f32> = (0..k * m).map(|i| (i % 11) as f32 - 5.0).collect();
        // Reference: transpose to [m, k] then multiply.
        let mut a = vec![0.0f32; m * k];
        for kk in 0..k {
            for i in 0..m {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.1).collect();
        let expect = reference(&a, &b, m, k, n);
        for threads in [1, 4] {
            let mut c = vec![0.0f32; m * n];
            matmul_at_b(threads, &a_t, &b, &mut c, m, k, n);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4, "threads={threads}");
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut c = vec![0.0f32; 0];
        matmul(4, &[], &[], &mut c, 0, 0, 0);
        let mut c1 = vec![0.0f32; 1];
        matmul(4, &[2.0], &[3.0], &mut c1, 1, 1, 1);
        assert_eq!(c1[0], 6.0);
    }
}
