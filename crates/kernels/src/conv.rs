//! Direct 2-D convolution kernels (NHWC, HWIO filters, SAME padding).

use crate::tensor::Tensor;

fn out_dim(i: usize, stride: usize) -> usize {
    i.div_ceil(stride)
}

/// Checks shapes and returns `(n, h, w, cin, kh, kw, cout, ho, wo)`.
fn geometry(
    input: &Tensor,
    filter: &Tensor,
    stride: usize,
) -> (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
) {
    assert_eq!(input.shape().len(), 4, "input must be NHWC");
    assert_eq!(filter.shape().len(), 4, "filter must be HWIO");
    assert!(stride >= 1, "stride must be >= 1");
    let (n, h, w, cin) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (kh, kw, fcin, cout) = (
        filter.shape()[0],
        filter.shape()[1],
        filter.shape()[2],
        filter.shape()[3],
    );
    assert_eq!(cin, fcin, "channel mismatch: input {cin} vs filter {fcin}");
    (
        n,
        h,
        w,
        cin,
        kh,
        kw,
        cout,
        out_dim(h, stride),
        out_dim(w, stride),
    )
}

/// Forward convolution with SAME padding. Parallel over output rows.
pub fn conv2d(threads: usize, input: &Tensor, filter: &Tensor, stride: usize) -> Tensor {
    let (n, h, w, cin, kh, kw, cout, ho, wo) = geometry(input, filter, stride);
    let mut out = Tensor::zeros(&[n, ho, wo, cout]);
    let pad_h = (kh - 1) / 2;
    let pad_w = (kw - 1) / 2;
    let x = input.data();
    let f = filter.data();
    let row_elems = wo * cout;
    let bands: Vec<(usize, &mut [f32])> = {
        let rows = n * ho;
        let chunk = rows.div_ceil(threads.clamp(1, rows.max(1))).max(1);
        out.data_mut()
            .chunks_mut(chunk * row_elems)
            .enumerate()
            .map(|(i, band)| (i * chunk, band))
            .collect()
    };
    let nbands = bands.len();
    std::thread::scope(|s| {
        for (row0, band) in bands {
            let mut work = move || {
                for (r, orow) in band.chunks_mut(row_elems).enumerate() {
                    let global = row0 + r;
                    let (b, oy) = (global / ho, global % ho);
                    for ox in 0..wo {
                        let ocell = &mut orow[ox * cout..(ox + 1) * cout];
                        for ky in 0..kh {
                            let iy = (oy * stride + ky).wrapping_sub(pad_h);
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx).wrapping_sub(pad_w);
                                if ix >= w {
                                    continue;
                                }
                                let xbase = ((b * h + iy) * w + ix) * cin;
                                let fbase = (ky * kw + kx) * cin * cout;
                                for ci in 0..cin {
                                    let xv = x[xbase + ci];
                                    let frow = &f[fbase + ci * cout..fbase + (ci + 1) * cout];
                                    for (ov, &fv) in ocell.iter_mut().zip(frow) {
                                        *ov += xv * fv;
                                    }
                                }
                            }
                        }
                    }
                }
            };
            if nbands == 1 {
                work();
            } else {
                s.spawn(work);
            }
        }
    });
    out
}

/// Gradient w.r.t. the filter. Parallel over the filter's `cout` dimension
/// is awkward with HWIO layout; instead each worker accumulates a private
/// filter gradient over a slice of the batch, merged at the end (a classic
/// parallel reduction — the serializing part the paper's cost model charges
/// `Conv2DBackpropFilter` extra `serial_secs` for).
pub fn conv2d_backprop_filter(
    threads: usize,
    input: &Tensor,
    grad_out: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
) -> Tensor {
    assert_eq!(input.shape().len(), 4);
    assert_eq!(grad_out.shape().len(), 4);
    let (n, h, w, cin) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (gn, ho, wo, cout) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    assert_eq!(n, gn, "batch mismatch");
    assert_eq!(ho, out_dim(h, stride), "grad_out height mismatch");
    assert_eq!(wo, out_dim(w, stride), "grad_out width mismatch");
    let pad_h = (kh - 1) / 2;
    let pad_w = (kw - 1) / 2;
    let x = input.data();
    let g = grad_out.data();
    let filter_len = kh * kw * cin * cout;

    let partial = crate::pool::parallel_map_reduce(
        threads,
        n,
        |batch_range| {
            let mut df = vec![0.0f32; filter_len];
            for b in batch_range {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let gbase = ((b * ho + oy) * wo + ox) * cout;
                        for ky in 0..kh {
                            let iy = (oy * stride + ky).wrapping_sub(pad_h);
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx).wrapping_sub(pad_w);
                                if ix >= w {
                                    continue;
                                }
                                let xbase = ((b * h + iy) * w + ix) * cin;
                                let fbase = (ky * kw + kx) * cin * cout;
                                for ci in 0..cin {
                                    let xv = x[xbase + ci];
                                    let drow = &mut df[fbase + ci * cout..fbase + (ci + 1) * cout];
                                    let grow = &g[gbase..gbase + cout];
                                    for (dv, &gv) in drow.iter_mut().zip(grow) {
                                        *dv += xv * gv;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            df
        },
        |mut acc, part| {
            for (a, p) in acc.iter_mut().zip(&part) {
                *a += p;
            }
            acc
        },
        vec![0.0f32; filter_len],
    );
    Tensor::from_vec(&[kh, kw, cin, cout], partial)
}

/// Gradient w.r.t. the input. Parallel over input rows.
pub fn conv2d_backprop_input(
    threads: usize,
    input_shape: &[usize],
    filter: &Tensor,
    grad_out: &Tensor,
    stride: usize,
) -> Tensor {
    assert_eq!(input_shape.len(), 4);
    let (n, h, w, cin) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (kh, kw, fcin, cout) = (
        filter.shape()[0],
        filter.shape()[1],
        filter.shape()[2],
        filter.shape()[3],
    );
    assert_eq!(cin, fcin, "channel mismatch");
    let (ho, wo) = (out_dim(h, stride), out_dim(w, stride));
    assert_eq!(
        grad_out.shape(),
        &[n, ho, wo, cout],
        "grad_out shape mismatch"
    );
    let pad_h = (kh - 1) / 2;
    let pad_w = (kw - 1) / 2;
    let f = filter.data();
    let g = grad_out.data();
    let mut dx = Tensor::zeros(&[n, h, w, cin]);
    let row_elems = w * cin;
    let bands: Vec<(usize, &mut [f32])> = {
        let rows = n * h;
        let chunk = rows.div_ceil(threads.clamp(1, rows.max(1))).max(1);
        dx.data_mut()
            .chunks_mut(chunk * row_elems)
            .enumerate()
            .map(|(i, band)| (i * chunk, band))
            .collect()
    };
    let nbands = bands.len();
    std::thread::scope(|s| {
        for (row0, band) in bands {
            let mut work = move || {
                for (r, xrow) in band.chunks_mut(row_elems).enumerate() {
                    let global = row0 + r;
                    let (b, iy) = (global / h, global % h);
                    for ix in 0..w {
                        let xcell = &mut xrow[ix * cin..(ix + 1) * cin];
                        // All output positions whose window covers (iy, ix).
                        for ky in 0..kh {
                            let oy_num = iy + pad_h;
                            if oy_num < ky || (oy_num - ky) % stride != 0 {
                                continue;
                            }
                            let oy = (oy_num - ky) / stride;
                            if oy >= ho {
                                continue;
                            }
                            for kx in 0..kw {
                                let ox_num = ix + pad_w;
                                if ox_num < kx || (ox_num - kx) % stride != 0 {
                                    continue;
                                }
                                let ox = (ox_num - kx) / stride;
                                if ox >= wo {
                                    continue;
                                }
                                let gbase = ((b * ho + oy) * wo + ox) * cout;
                                let fbase = (ky * kw + kx) * cin * cout;
                                for (ci, xv) in xcell.iter_mut().enumerate() {
                                    let frow = &f[fbase + ci * cout..fbase + (ci + 1) * cout];
                                    let grow = &g[gbase..gbase + cout];
                                    let mut s = 0.0;
                                    for (&fv, &gv) in frow.iter().zip(grow) {
                                        s += fv * gv;
                                    }
                                    *xv += s;
                                }
                            }
                        }
                    }
                }
            };
            if nbands == 1 {
                work();
            } else {
                s.spawn(work);
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_input() -> Tensor {
        Tensor::sequence(&[2, 5, 5, 3], 1.0)
    }

    fn small_filter() -> Tensor {
        Tensor::sequence(&[3, 3, 3, 4], 0.5)
    }

    #[test]
    fn forward_thread_counts_agree() {
        let x = small_input();
        let f = small_filter();
        let base = conv2d(1, &x, &f, 1);
        for threads in [2, 3, 8] {
            let out = conv2d(threads, &x, &f, 1);
            assert!(base.max_abs_diff(&out) < 1e-5, "threads={threads}");
        }
        assert_eq!(base.shape(), &[2, 5, 5, 4]);
    }

    #[test]
    fn forward_strided_shape() {
        let x = small_input();
        let f = small_filter();
        let out = conv2d(2, &x, &f, 2);
        assert_eq!(out.shape(), &[2, 3, 3, 4]);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 filter = identity over channels when set to the unit matrix.
        let x = small_input();
        let mut f = Tensor::zeros(&[1, 1, 3, 3]);
        for c in 0..3 {
            let idx = c * 3 + c;
            f.data_mut()[idx] = 1.0;
        }
        let out = conv2d(4, &x, &f, 1);
        assert!(x.max_abs_diff(&out) < 1e-6);
    }

    #[test]
    fn backprop_filter_matches_numeric_gradient() {
        // d/dF of sum(conv(x, F)) == conv_backprop_filter(x, ones).
        let x = Tensor::sequence(&[1, 4, 4, 2], 1.0);
        let f = Tensor::sequence(&[3, 3, 2, 2], 0.5);
        let ones = {
            let out = conv2d(1, &x, &f, 1);
            Tensor::from_vec(out.shape(), vec![1.0; out.len()])
        };
        let analytic = conv2d_backprop_filter(3, &x, &ones, 3, 3, 1);
        let eps = 1e-2f32;
        for idx in [0usize, 7, 17, 35] {
            let mut fp = f.clone();
            fp.data_mut()[idx] += eps;
            let mut fm = f.clone();
            fm.data_mut()[idx] -= eps;
            let lp: f32 = conv2d(1, &x, &fp, 1).data().iter().sum();
            let lm: f32 = conv2d(1, &x, &fm, 1).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() < 2e-2,
                "filter grad [{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn backprop_input_matches_numeric_gradient() {
        let x = Tensor::sequence(&[1, 4, 4, 2], 1.0);
        let f = Tensor::sequence(&[3, 3, 2, 2], 0.5);
        let ones = {
            let out = conv2d(1, &x, &f, 1);
            Tensor::from_vec(out.shape(), vec![1.0; out.len()])
        };
        let analytic = conv2d_backprop_input(2, x.shape(), &f, &ones, 1);
        let eps = 1e-2f32;
        for idx in [0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = conv2d(1, &xp, &f, 1).data().iter().sum();
            let lm: f32 = conv2d(1, &xm, &f, 1).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() < 2e-2,
                "input grad [{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn backprop_thread_counts_agree() {
        let x = Tensor::sequence(&[2, 6, 6, 3], 1.0);
        let f = Tensor::sequence(&[3, 3, 3, 4], 0.5);
        let gout = {
            let out = conv2d(1, &x, &f, 2);
            Tensor::sequence(out.shape(), 1.0)
        };
        let df1 = conv2d_backprop_filter(1, &x, &gout, 3, 3, 2);
        let df4 = conv2d_backprop_filter(4, &x, &gout, 3, 3, 2);
        assert!(df1.max_abs_diff(&df4) < 1e-4);
        let dx1 = conv2d_backprop_input(1, x.shape(), &f, &gout, 2);
        let dx4 = conv2d_backprop_input(4, x.shape(), &f, &gout, 2);
        assert!(dx1.max_abs_diff(&dx4) < 1e-4);
    }
}
