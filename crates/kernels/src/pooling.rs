//! Max/avg pooling (NHWC, SAME-style ceil output, window clipped at edges).

use crate::pool::parallel_for;
use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU32, Ordering};

fn pooled<Fin, Fout>(
    threads: usize,
    input: &Tensor,
    k: usize,
    stride: usize,
    init: f32,
    fold: Fin,
    finish: Fout,
) -> Tensor
where
    Fin: Fn(f32, f32) -> f32 + Sync,
    Fout: Fn(f32, usize) -> f32 + Sync,
{
    assert_eq!(input.shape().len(), 4, "input must be NHWC");
    assert!(k >= 1 && stride >= 1);
    let (n, h, w, c) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (ho, wo) = (h.div_ceil(stride), w.div_ceil(stride));
    let x = input.data();
    // Atomic f32 via bit-casting lets parallel_for write disjoint cells
    // without banding; each index is written exactly once.
    let out: Vec<AtomicU32> = (0..n * ho * wo * c).map(|_| AtomicU32::new(0)).collect();
    parallel_for(threads, n * ho * wo, |cells| {
        for cell in cells {
            let ci = cell % wo;
            let rest = cell / wo;
            let oy = rest % ho;
            let b = rest / ho;
            for ch in 0..c {
                let mut acc = init;
                let mut count = 0usize;
                for ky in 0..k {
                    let iy = oy * stride + ky;
                    if iy >= h {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = ci * stride + kx;
                        if ix >= w {
                            continue;
                        }
                        acc = fold(acc, x[((b * h + iy) * w + ix) * c + ch]);
                        count += 1;
                    }
                }
                let v = finish(acc, count.max(1));
                out[((b * ho + oy) * wo + ci) * c + ch].store(v.to_bits(), Ordering::Relaxed);
            }
        }
    });
    Tensor::from_vec(
        &[n, ho, wo, c],
        out.into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect(),
    )
}

/// Max pooling over `k`×`k` windows.
pub fn max_pool2d(threads: usize, input: &Tensor, k: usize, stride: usize) -> Tensor {
    pooled(
        threads,
        input,
        k,
        stride,
        f32::NEG_INFINITY,
        f32::max,
        |acc, _| acc,
    )
}

/// Average pooling over `k`×`k` windows (edge windows average fewer cells).
pub fn avg_pool2d(threads: usize, input: &Tensor, k: usize, stride: usize) -> Tensor {
    pooled(
        threads,
        input,
        k,
        stride,
        0.0,
        |a, b| a + b,
        |acc, cnt| acc / cnt as f32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_basics() {
        // 1x4x4x1 with values 0..16; 2x2/2 max pool -> [[5,7],[13,15]].
        let x = Tensor::from_vec(&[1, 4, 4, 1], (0..16).map(|v| v as f32).collect());
        let out = max_pool2d(2, &x, 2, 2);
        assert_eq!(out.shape(), &[1, 2, 2, 1]);
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_basics() {
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![1.0, 3.0, 5.0, 7.0]);
        let out = avg_pool2d(1, &x, 2, 2);
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn thread_counts_agree() {
        let x = Tensor::sequence(&[3, 9, 9, 5], 1.0);
        let base = max_pool2d(1, &x, 3, 2);
        for threads in [2, 4, 16] {
            assert_eq!(base, max_pool2d(threads, &x, 3, 2), "threads={threads}");
        }
        let base = avg_pool2d(1, &x, 3, 2);
        for threads in [2, 4, 16] {
            assert!(base.max_abs_diff(&avg_pool2d(threads, &x, 3, 2)) < 1e-6);
        }
    }

    #[test]
    fn edge_windows_clip() {
        // 3x3 input, 2x2/2 pooling: output 2x2, edge windows smaller.
        let x = Tensor::from_vec(&[1, 3, 3, 1], (1..=9).map(|v| v as f32).collect());
        let avg = avg_pool2d(1, &x, 2, 2);
        assert_eq!(avg.shape(), &[1, 2, 2, 1]);
        // Top-left: (1+2+4+5)/4 = 3.0 ; top-right: (3+6)/2 = 4.5
        assert_eq!(avg.data()[0], 3.0);
        assert_eq!(avg.data()[1], 4.5);
        // Bottom-right: just 9.
        assert_eq!(avg.data()[3], 9.0);
    }
}

/// Gradient of max pooling: routes each output gradient to the argmax cell
/// of its window (ties go to the first maximum, as in most frameworks).
pub fn max_pool2d_grad(
    threads: usize,
    input: &Tensor,
    grad_out: &Tensor,
    k: usize,
    stride: usize,
) -> Tensor {
    assert_eq!(input.shape().len(), 4);
    let (n, h, w, c) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (ho, wo) = (h.div_ceil(stride), w.div_ceil(stride));
    assert_eq!(grad_out.shape(), &[n, ho, wo, c], "grad_out shape mismatch");
    let x = input.data();
    let g = grad_out.data();
    // Each input cell can receive gradient from several windows when
    // stride < k; accumulate atomically via bit-cast CAS loops.
    let dx: Vec<AtomicU32> = (0..input.len())
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();
    parallel_for(threads, n * ho * wo, |cells| {
        for cell in cells {
            let ox = cell % wo;
            let rest = cell / wo;
            let oy = rest % ho;
            let b = rest / ho;
            for ch in 0..c {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = None;
                for ky in 0..k {
                    let iy = oy * stride + ky;
                    if iy >= h {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = ox * stride + kx;
                        if ix >= w {
                            continue;
                        }
                        let idx = ((b * h + iy) * w + ix) * c + ch;
                        if x[idx] > best {
                            best = x[idx];
                            best_idx = Some(idx);
                        }
                    }
                }
                if let Some(idx) = best_idx {
                    let gv = g[((b * ho + oy) * wo + ox) * c + ch];
                    // CAS accumulation of an f32 stored as bits.
                    let slot = &dx[idx];
                    let mut cur = slot.load(Ordering::Relaxed);
                    loop {
                        let new = (f32::from_bits(cur) + gv).to_bits();
                        match slot.compare_exchange_weak(
                            cur,
                            new,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(actual) => cur = actual,
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(
        input.shape(),
        dx.into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect(),
    )
}

#[cfg(test)]
mod grad_tests {
    use super::*;

    #[test]
    fn routes_gradient_to_the_argmax() {
        // 1x2x2x1 input, 2x2/2 pool: one window, max at index 3.
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![1.0, 2.0, 3.0, 9.0]);
        let gout = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]);
        let dx = max_pool2d_grad(2, &x, &gout, 2, 2);
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn matches_numeric_gradient() {
        let x = Tensor::sequence(&[1, 4, 4, 2], 1.0);
        let out = max_pool2d(1, &x, 2, 2);
        let gout = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        let analytic = max_pool2d_grad(3, &x, &gout, 2, 2);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp: f32 = max_pool2d(1, &xp, 2, 2).data().iter().sum();
            let fm: f32 = max_pool2d(1, &xm, 2, 2).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic.data()[idx] - numeric).abs() < 1e-2,
                "dx[{idx}]: analytic {} vs numeric {numeric}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn grad_thread_counts_agree() {
        let x = Tensor::sequence(&[2, 6, 6, 3], 1.0);
        let out = max_pool2d(1, &x, 3, 2);
        let gout = Tensor::sequence(out.shape(), 1.0);
        let base = max_pool2d_grad(1, &x, &gout, 3, 2);
        for threads in [2, 4, 8] {
            let other = max_pool2d_grad(threads, &x, &gout, 3, 2);
            assert!(base.max_abs_diff(&other) < 1e-5, "threads={threads}");
        }
    }

    #[test]
    fn overlapping_windows_accumulate() {
        // stride 1 < k 2: interior maxima receive gradient from several
        // windows.
        let x = Tensor::from_vec(
            &[1, 3, 3, 1],
            vec![0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0],
        );
        let out = max_pool2d(1, &x, 2, 1);
        let gout = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        let dx = max_pool2d_grad(2, &x, &gout, 2, 1);
        // The centre cell wins all four 2x2 windows that cover it.
        assert_eq!(dx.data()[4], 4.0);
    }
}
