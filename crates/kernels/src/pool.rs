//! Thread-count-exact parallel iteration.

use std::ops::Range;

/// Runs `f` over `0..n`, split into at most `threads` contiguous chunks, one
/// chunk per worker (the calling thread processes the first chunk).
///
/// `threads` is clamped to `[1, n]`; `threads == 1` runs inline with zero
/// overhead. Panics in workers propagate to the caller.
pub fn parallel_for<F>(threads: usize, n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        f(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        for t in 1..threads {
            let lo = t * chunk;
            if lo >= n {
                break;
            }
            let hi = ((t + 1) * chunk).min(n);
            s.spawn(move || f(lo..hi));
        }
        f(0..chunk.min(n));
    });
}

/// Like [`parallel_for`] but each worker produces a partial result, which are
/// then merged serially — the shape of a parallel reduction.
pub fn parallel_map_reduce<T, F, M>(threads: usize, n: usize, f: F, mut merge: M, init: T) -> T
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    M: FnMut(T, T) -> T,
{
    if n == 0 {
        return init;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return merge(init, f(0..n));
    }
    let chunk = n.div_ceil(threads);
    let mut partials: Vec<T> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let f = &f;
        let mut handles = Vec::new();
        for t in 1..threads {
            let lo = t * chunk;
            if lo >= n {
                break;
            }
            let hi = ((t + 1) * chunk).min(n);
            handles.push(s.spawn(move || f(lo..hi)));
        }
        partials.push(f(0..chunk.min(n)));
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    partials.into_iter().fold(init, &mut merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1003;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for threads in [1, 2, 3, 7, 16, 64, 2000] {
            for c in &counts {
                c.store(0, Ordering::Relaxed);
            }
            parallel_for(threads, n, |range| {
                for i in range {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        parallel_for(4, 0, |_| panic!("must not be called"));
    }

    #[test]
    fn map_reduce_sums() {
        let total = parallel_map_reduce(
            8,
            10_000,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
            0u64,
        );
        assert_eq!(total, 10_000u64 * 9_999 / 2);
    }

    #[test]
    fn single_thread_matches_multi() {
        let f = |r: Range<usize>| r.map(|i| (i * i) as u64).sum::<u64>();
        let a = parallel_map_reduce(1, 5000, f, |x, y| x + y, 0);
        let b = parallel_map_reduce(13, 5000, f, |x, y| x + y, 0);
        assert_eq!(a, b);
    }
}
