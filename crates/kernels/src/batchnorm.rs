//! Fused batch normalization (inference + training forward) over NHWC.

use crate::pool::parallel_map_reduce;
use crate::tensor::Tensor;

/// Per-channel mean and (biased) variance of an NHWC tensor.
pub fn batch_moments(threads: usize, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(input.shape().len(), 4, "input must be NHWC");
    let c = input.shape()[3];
    let rows = input.len() / c.max(1);
    let x = input.data();
    let (sum, sum_sq) = parallel_map_reduce(
        threads,
        rows,
        |range| {
            let mut s = vec![0.0f64; c];
            let mut s2 = vec![0.0f64; c];
            for r in range {
                for (j, &v) in x[r * c..(r + 1) * c].iter().enumerate() {
                    s[j] += v as f64;
                    s2[j] += (v as f64) * (v as f64);
                }
            }
            (s, s2)
        },
        |(mut a, mut a2), (b, b2)| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            for (x, y) in a2.iter_mut().zip(&b2) {
                *x += y;
            }
            (a, a2)
        },
        (vec![0.0f64; c], vec![0.0f64; c]),
    );
    let n = rows as f64;
    let mean: Vec<f32> = sum.iter().map(|&s| (s / n) as f32).collect();
    let var: Vec<f32> = sum_sq
        .iter()
        .zip(&mean)
        .map(|(&s2, &m)| ((s2 / n) - (m as f64) * (m as f64)).max(0.0) as f32)
        .collect();
    (mean, var)
}

/// Fused batch-norm forward: `y = gamma * (x - mean) / sqrt(var + eps) + beta`,
/// with the batch statistics computed internally (training mode).
pub fn fused_batch_norm(
    threads: usize,
    input: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Tensor {
    let c = input.shape()[3];
    assert_eq!(gamma.len(), c, "gamma per channel");
    assert_eq!(beta.len(), c, "beta per channel");
    let (mean, var) = batch_moments(threads, input);
    let scale: Vec<f32> = gamma
        .iter()
        .zip(&var)
        .map(|(&g, &v)| g / (v + eps).sqrt())
        .collect();
    let shift: Vec<f32> = beta
        .iter()
        .zip(&mean)
        .zip(&scale)
        .map(|((&b, &m), &s)| b - m * s)
        .collect();
    let mut out = input.clone();
    let data = out.data_mut();
    let rows = data.len() / c.max(1);
    let chunk_rows = rows.div_ceil(threads.clamp(1, rows.max(1))).max(1);
    std::thread::scope(|s| {
        for band in data.chunks_mut(chunk_rows * c) {
            let (scale, shift) = (&scale, &shift);
            s.spawn(move || {
                for row in band.chunks_mut(c) {
                    for ((v, &sc), &sh) in row.iter_mut().zip(scale).zip(shift) {
                        *v = *v * sc + sh;
                    }
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_output_has_zero_mean_unit_var() {
        let x = Tensor::sequence(&[4, 6, 6, 3], 2.0);
        let out = fused_batch_norm(3, &x, &[1.0; 3], &[0.0; 3], 1e-5);
        let (mean, var) = batch_moments(1, &out);
        for (m, v) in mean.iter().zip(&var) {
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let x = Tensor::sequence(&[2, 4, 4, 2], 1.0);
        let out = fused_batch_norm(2, &x, &[2.0, 0.5], &[10.0, -1.0], 1e-5);
        let (mean, var) = batch_moments(1, &out);
        assert!((mean[0] - 10.0).abs() < 1e-3);
        assert!((mean[1] + 1.0).abs() < 1e-3);
        assert!((var[0] - 4.0).abs() < 0.05);
        assert!((var[1] - 0.25).abs() < 0.01);
    }

    #[test]
    fn thread_counts_agree() {
        let x = Tensor::sequence(&[3, 5, 5, 4], 1.5);
        let base = fused_batch_norm(1, &x, &[1.0; 4], &[0.5; 4], 1e-5);
        for threads in [2, 4, 8] {
            let other = fused_batch_norm(threads, &x, &[1.0; 4], &[0.5; 4], 1e-5);
            assert!(base.max_abs_diff(&other) < 1e-5, "threads={threads}");
        }
    }

    #[test]
    fn constant_channel_stays_constant() {
        // A channel with zero variance must map to beta everywhere.
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![3.0; 4]);
        let out = fused_batch_norm(1, &x, &[1.0], &[7.0], 1e-5);
        for v in out.data() {
            assert!((v - 7.0).abs() < 1e-3);
        }
    }
}
