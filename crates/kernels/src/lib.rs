//! # nnrt-kernels
//!
//! Real, runnable CPU kernels for the operations the paper schedules —
//! convolution (forward and both backprops), matmul, pooling, element-wise
//! ops, softmax/cross-entropy and the Adam update — all parallelized over an
//! exact, caller-chosen thread count.
//!
//! This crate is the host-machine counterpart of the simulated MKL-DNN ops:
//! it lets the same hill-climbing auto-tuner (`autotune`) run against *real*
//! hardware, so the library is useful beyond the paper reproduction. Every
//! kernel takes `threads: usize` explicitly — exactly the knob the paper's
//! runtime turns.
//!
//! Parallelism uses `std::thread::scope`, so kernels borrow their
//! inputs/outputs safely with no `unsafe` anywhere in the crate. (Per-call
//! thread spawning costs a few microseconds per thread — the very
//! "thread spawning overhead" the paper's Figure 1 attributes poor op
//! scalability to; the auto-tuner sees it like the real runtime would.)

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod batchnorm;
pub mod conv;
pub mod elementwise;
pub mod im2col;
pub mod matmul;
pub mod pool;
pub mod pooling;
pub mod softmax;
pub mod tensor;

pub use autotune::{hill_climb_threads, TuneResult};
pub use pool::parallel_for;
pub use tensor::Tensor;
