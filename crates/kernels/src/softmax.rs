//! Row-wise softmax and sparse cross-entropy loss.

use crate::pool::parallel_map_reduce;

/// Row-wise softmax of a `[rows, classes]` matrix, written to `out`.
pub fn softmax(threads: usize, logits: &[f32], out: &mut [f32], classes: usize) {
    assert!(classes > 0 && logits.len().is_multiple_of(classes));
    assert_eq!(logits.len(), out.len());
    let rows = logits.len() / classes;
    let chunk_rows = rows.div_ceil(threads.clamp(1, rows.max(1))).max(1);
    std::thread::scope(|s| {
        for (i, band) in out.chunks_mut(chunk_rows * classes).enumerate() {
            let lo = i * chunk_rows * classes;
            let in_band = &logits[lo..lo + band.len()];
            s.spawn(move || {
                for (orow, irow) in band.chunks_mut(classes).zip(in_band.chunks(classes)) {
                    let max = irow.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut denom = 0.0f32;
                    for (o, &x) in orow.iter_mut().zip(irow) {
                        let e = (x - max).exp();
                        *o = e;
                        denom += e;
                    }
                    for o in orow.iter_mut() {
                        *o /= denom;
                    }
                }
            });
        }
    });
}

/// Mean sparse cross-entropy of `[rows, classes]` logits against integer
/// labels; also writes `d logits` (softmax minus one-hot, scaled by 1/rows)
/// into `grad`.
pub fn sparse_softmax_cross_entropy(
    threads: usize,
    logits: &[f32],
    labels: &[usize],
    grad: &mut [f32],
    classes: usize,
) -> f32 {
    assert!(classes > 0 && logits.len().is_multiple_of(classes));
    assert_eq!(logits.len(), grad.len());
    let rows = logits.len() / classes;
    assert_eq!(labels.len(), rows, "one label per row");
    assert!(labels.iter().all(|&l| l < classes), "label out of range");
    softmax(threads, logits, grad, classes);
    let scale = 1.0 / rows as f32;
    // Loss reduction over rows, then fix up the gradient's label entries.
    let loss = parallel_map_reduce(
        threads,
        rows,
        |range| {
            let mut acc = 0.0f64;
            for r in range {
                let p = grad[r * classes + labels[r]].max(1e-30);
                acc += -(p.ln() as f64);
            }
            acc
        },
        |a, b| a + b,
        0.0,
    ) as f32
        * scale;
    // grad = (softmax - onehot) / rows.
    let chunk_rows = rows.div_ceil(threads.clamp(1, rows.max(1))).max(1);
    std::thread::scope(|s| {
        for (i, band) in grad.chunks_mut(chunk_rows * classes).enumerate() {
            let row0 = i * chunk_rows;
            let lbl = &labels[row0..(row0 + band.len() / classes).min(rows)];
            s.spawn(move || {
                for (r, row) in band.chunks_mut(classes).enumerate() {
                    row[lbl[r]] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= scale;
                    }
                }
            });
        }
    });
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits: Vec<f32> = (0..60).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut out = vec![0.0f32; 60];
        softmax(4, &logits, &mut out, 10);
        for row in out.chunks(10) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn uniform_logits_give_ln_classes_loss() {
        let logits = vec![0.0f32; 4 * 10];
        let labels = vec![3usize, 1, 0, 9];
        let mut grad = vec![0.0f32; 40];
        let loss = sparse_softmax_cross_entropy(2, &logits, &labels, &mut grad, 10);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        // Gradient sums to zero per row.
        for row in grad.chunks(10) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits: Vec<f32> = vec![0.2, -0.5, 1.0, 0.0, 0.3, -0.2];
        let labels = vec![2usize, 0];
        let mut grad = vec![0.0f32; 6];
        sparse_softmax_cross_entropy(1, &logits, &labels, &mut grad, 3);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp[idx] += eps;
            let mut lm = logits.clone();
            lm[idx] -= eps;
            let mut scratch = vec![0.0f32; 6];
            let fp = sparse_softmax_cross_entropy(1, &lp, &labels, &mut scratch, 3);
            let fm = sparse_softmax_cross_entropy(1, &lm, &labels, &mut scratch, 3);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[idx] - numeric).abs() < 1e-3,
                "d logits[{idx}]: analytic {} vs numeric {numeric}",
                grad[idx]
            );
        }
    }

    #[test]
    fn thread_counts_agree() {
        let rows = 37;
        let classes = 11;
        let logits: Vec<f32> = (0..rows * classes)
            .map(|i| ((i * 31 % 17) as f32) * 0.1)
            .collect();
        let labels: Vec<usize> = (0..rows).map(|r| r % classes).collect();
        let mut g1 = vec![0.0f32; rows * classes];
        let l1 = sparse_softmax_cross_entropy(1, &logits, &labels, &mut g1, classes);
        for threads in [2, 5, 16] {
            let mut g = vec![0.0f32; rows * classes];
            let l = sparse_softmax_cross_entropy(threads, &logits, &labels, &mut g, classes);
            assert!((l - l1).abs() < 1e-5);
            for (a, b) in g.iter().zip(&g1) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
