//! Element-wise kernels, bias ops and the Adam update.

use crate::pool::parallel_map_reduce;

/// Generic in-place map over `data` with `threads` workers.
pub fn map_inplace<F>(threads: usize, data: &mut [f32], f: F)
where
    F: Fn(f32) -> f32 + Sync,
{
    let n = data.len();
    let threads = threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|s| {
        let mut rest = &mut data[..];
        let mut first = true;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (band, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            if first && rest.is_empty() {
                for v in band.iter_mut() {
                    *v = f(*v);
                }
            } else {
                s.spawn(move || {
                    for v in band.iter_mut() {
                        *v = f(*v);
                    }
                });
            }
            first = false;
        }
    });
}

/// `out[i] = f(a[i], b[i])`.
pub fn zip_map<F>(threads: usize, a: &[f32], b: &[f32], out: &mut [f32], f: F)
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let n = out.len();
    let threads = threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for (i, band) in out.chunks_mut(chunk).enumerate() {
            let lo = i * chunk;
            let (abandon, bband) = (&a[lo..lo + band.len()], &b[lo..lo + band.len()]);
            let f = &f;
            s.spawn(move || {
                for ((o, &x), &y) in band.iter_mut().zip(abandon).zip(bband) {
                    *o = f(x, y);
                }
            });
        }
    });
}

/// ReLU in place.
pub fn relu(threads: usize, data: &mut [f32]) {
    map_inplace(threads, data, |v| v.max(0.0));
}

/// Logistic sigmoid in place.
pub fn sigmoid(threads: usize, data: &mut [f32]) {
    map_inplace(threads, data, |v| 1.0 / (1.0 + (-v).exp()));
}

/// Hyperbolic tangent in place.
pub fn tanh(threads: usize, data: &mut [f32]) {
    map_inplace(threads, data, f32::tanh);
}

/// Adds a per-channel bias to an `[rows, channels]`-flattened activation.
pub fn bias_add(threads: usize, data: &mut [f32], bias: &[f32]) {
    let c = bias.len();
    assert!(
        c > 0 && data.len().is_multiple_of(c),
        "data not a multiple of channels"
    );
    let rows = data.len() / c;
    let chunk_rows = rows.div_ceil(threads.clamp(1, rows.max(1))).max(1);
    std::thread::scope(|s| {
        for band in data.chunks_mut(chunk_rows * c) {
            s.spawn(move || {
                for row in band.chunks_mut(c) {
                    for (v, &b) in row.iter_mut().zip(bias) {
                        *v += b;
                    }
                }
            });
        }
    });
}

/// Per-channel reduction of a gradient (`BiasAddGrad`).
pub fn bias_add_grad(threads: usize, grad: &[f32], channels: usize) -> Vec<f32> {
    assert!(channels > 0 && grad.len().is_multiple_of(channels));
    let rows = grad.len() / channels;
    parallel_map_reduce(
        threads,
        rows,
        |range| {
            let mut acc = vec![0.0f32; channels];
            for r in range {
                for (a, &g) in acc.iter_mut().zip(&grad[r * channels..(r + 1) * channels]) {
                    *a += g;
                }
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        },
        vec![0.0f32; channels],
    )
}

/// One Adam step over a parameter vector (all state updated in place).
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    threads: usize,
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u32,
) {
    assert_eq!(param.len(), grad.len());
    assert_eq!(param.len(), m.len());
    assert_eq!(param.len(), v.len());
    let bc1 = 1.0 - beta1.powi(step.max(1) as i32);
    let bc2 = 1.0 - beta2.powi(step.max(1) as i32);
    let n = param.len();
    let threads = threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|s| {
        let mut p_rest = &mut param[..];
        let mut m_rest = &mut m[..];
        let mut v_rest = &mut v[..];
        let mut lo = 0usize;
        while !p_rest.is_empty() {
            let take = chunk.min(p_rest.len());
            let (pb, pt) = p_rest.split_at_mut(take);
            let (mb, mt) = m_rest.split_at_mut(take);
            let (vb, vt) = v_rest.split_at_mut(take);
            p_rest = pt;
            m_rest = mt;
            v_rest = vt;
            let gband = &grad[lo..lo + take];
            lo += take;
            s.spawn(move || {
                for (((p, g), mm), vv) in pb.iter_mut().zip(gband).zip(mb).zip(vb) {
                    *mm = beta1 * *mm + (1.0 - beta1) * g;
                    *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                    let mhat = *mm / bc1;
                    let vhat = *vv / bc2;
                    *p -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    });
}

/// Sum of all elements (parallel reduction helper used in losses).
pub fn sum(threads: usize, data: &[f32]) -> f64 {
    parallel_map_reduce(
        threads,
        data.len(),
        |r| r.map(|i| data[i] as f64).sum::<f64>(),
        |a, b| a + b,
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_friends() {
        let mut v = vec![-1.0f32, 0.0, 2.0, -3.5];
        relu(2, &mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0, 0.0]);
        let mut s = vec![0.0f32];
        sigmoid(1, &mut s);
        assert!((s[0] - 0.5).abs() < 1e-6);
        let mut t = vec![0.0f32];
        tanh(1, &mut t);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn zip_map_multiplies() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        let mut out = vec![0.0f32; 3];
        zip_map(2, &a, &b, &mut out, |x, y| x * y);
        assert_eq!(out, vec![4.0, 10.0, 18.0]);
    }

    #[test]
    fn bias_roundtrip() {
        let mut data = vec![0.0f32; 6];
        bias_add(3, &mut data, &[1.0, 2.0]);
        assert_eq!(data, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        let grads = bias_add_grad(2, &data, 2);
        assert_eq!(grads, vec![3.0, 6.0]);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(p) = p^2 from p=5.
        let mut p = vec![5.0f32];
        let mut m = vec![0.0f32];
        let mut v = vec![0.0f32];
        for step in 1..=500 {
            let g = vec![2.0 * p[0]];
            adam_step(1, &mut p, &g, &mut m, &mut v, 0.05, 0.9, 0.999, 1e-8, step);
        }
        assert!(
            p[0].abs() < 0.1,
            "Adam should approach the minimum, got {}",
            p[0]
        );
    }

    #[test]
    fn adam_thread_counts_agree() {
        let n = 1000;
        let grad: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
        let run = |threads: usize| {
            let mut p: Vec<f32> = (0..n).map(|i| i as f32 * 0.001).collect();
            let mut m = vec![0.0f32; n];
            let mut v = vec![0.0f32; n];
            adam_step(
                threads, &mut p, &grad, &mut m, &mut v, 0.01, 0.9, 0.999, 1e-8, 1,
            );
            p
        };
        let base = run(1);
        for threads in [2, 7, 32] {
            assert_eq!(base, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn sum_matches_serial() {
        let data: Vec<f32> = (0..10_000).map(|i| (i % 13) as f32 - 6.0).collect();
        let serial: f64 = data.iter().map(|&v| v as f64).sum();
        assert!((sum(8, &data) - serial).abs() < 1e-6);
    }
}
