//! The paper's hill-climbing concurrency search, against *real* kernels.
//!
//! Same algorithm as `nnrt-sched`'s simulated profiler — start at one
//! thread, climb by a stride, stop at the first slowdown — but measuring
//! `std::time::Instant` on the host machine. This is what makes the crate a
//! practical auto-tuner and not just a reproduction artifact.

use std::time::Instant;

/// Outcome of a hill-climbing thread search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Best thread count found.
    pub best_threads: usize,
    /// Measured seconds at the best count.
    pub best_secs: f64,
    /// Every `(threads, seconds)` sample taken, in visit order.
    pub samples: Vec<(usize, f64)>,
}

/// Hill-climbs the thread count for `work`, a closure that runs the kernel
/// once with the given thread count. `interval` is the paper's stride `x`,
/// `max_threads` the search bound; each point is measured `reps` times and
/// the minimum taken (the usual wall-clock de-noising).
pub fn hill_climb_threads<F>(
    mut work: F,
    interval: usize,
    max_threads: usize,
    reps: usize,
) -> TuneResult
where
    F: FnMut(usize),
{
    assert!(interval >= 1, "interval must be >= 1");
    assert!(max_threads >= 1, "max_threads must be >= 1");
    let reps = reps.max(1);
    let mut measure = |threads: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            work(threads);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let mut samples = Vec::new();
    let mut threads = 1usize;
    let mut prev = measure(threads);
    samples.push((threads, prev));
    loop {
        let next = threads + interval;
        if next > max_threads {
            break;
        }
        let t = measure(next);
        samples.push((next, t));
        threads = next;
        if t > prev {
            break;
        }
        prev = t;
    }
    let &(best_threads, best_secs) = samples
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("at least one sample");
    TuneResult {
        best_threads,
        best_secs,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimum_of_synthetic_curve() {
        // Fake "kernel": sleep-free deterministic curve with minimum at 6
        // threads, fed through a virtual clock by making work() busy-wait
        // proportionally. To keep the test fast and robust we don't use real
        // time at all — we call the climber's internals through a curve.
        let curve = |p: usize| ((p as f64 - 6.0).powi(2) + 10.0) * 1e-5;
        // Busy-spin long enough that timing noise stays well under curve
        // differences (>= 10us steps).
        let result = hill_climb_threads(
            |p| {
                let target = curve(p);
                let t0 = Instant::now();
                while t0.elapsed().as_secs_f64() < target {
                    std::hint::spin_loop();
                }
            },
            2,
            16,
            3,
        );
        assert!(
            (5..=9).contains(&result.best_threads),
            "expected ~6-7 threads, got {} (samples {:?})",
            result.best_threads,
            result.samples
        );
        // Stopped before exhausting the range.
        assert!(result.samples.len() < 9);
    }

    #[test]
    fn real_kernel_tunes_without_panicking() {
        let a = vec![1.0f32; 64 * 64];
        let b = vec![2.0f32; 64 * 64];
        let mut c = vec![0.0f32; 64 * 64];
        let result = hill_climb_threads(
            |threads| crate::matmul::matmul(threads, &a, &b, &mut c, 64, 64, 64),
            2,
            8,
            2,
        );
        assert!(result.best_threads >= 1);
        assert!(result.best_secs > 0.0);
        assert!(!result.samples.is_empty());
    }
}
