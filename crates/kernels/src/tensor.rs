//! A minimal owned `f32` tensor with NHWC indexing.

/// Dense row-major tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero tensor of `shape`.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Tensor from existing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A deterministic pseudo-random tensor (for tests/examples; no RNG dep).
    pub fn sequence(shape: &[usize], scale: f32) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|i| {
                // A cheap splitmix-style scramble mapped to [-1, 1).
                let mut x = i as u64;
                x = x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(31);
                x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                ((x >> 40) as f32 / 8388608.0 - 1.0) * scale
            })
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// NHWC flat index.
    #[inline]
    pub fn nhwc(&self, n: usize, h: usize, w: usize, c: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        let (sh, sw, sc) = (self.shape[1], self.shape[2], self.shape[3]);
        debug_assert!(n < self.shape[0] && h < sh && w < sw && c < sc);
        ((n * sh + h) * sw + w) * sc + c
    }

    /// Maximum absolute difference to another tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major_nhwc() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.nhwc(0, 0, 0, 0), 0);
        assert_eq!(t.nhwc(0, 0, 0, 4), 4);
        assert_eq!(t.nhwc(0, 0, 1, 0), 5);
        assert_eq!(t.nhwc(0, 1, 0, 0), 20);
        assert_eq!(t.nhwc(1, 0, 0, 0), 60);
        assert_eq!(t.len(), 120);
    }

    #[test]
    fn sequence_is_deterministic_and_bounded() {
        let a = Tensor::sequence(&[4, 4, 4, 4], 0.5);
        let b = Tensor::sequence(&[4, 4, 4, 4], 0.5);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
        // Not all equal.
        assert!(a.data().iter().any(|&v| v != a.data()[0]));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates() {
        Tensor::from_vec(&[2, 2], vec![0.0; 5]);
    }
}
