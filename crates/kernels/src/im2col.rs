//! im2col convolution: lower the convolution to one big matmul, the
//! transformation MKL-DNN and cuDNN historically used. Trades memory (the
//! patch matrix is `k²·cin` times the input) for a single cache-friendly
//! GEMM; on large channel counts it typically beats the direct loops.

use crate::matmul::matmul;
use crate::pool::parallel_for;
use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU32, Ordering};

/// Lowers NHWC `input` to the im2col patch matrix of shape
/// `[n*ho*wo, kh*kw*cin]` for a `k`×`k`/`stride` convolution with SAME
/// padding.
pub fn im2col(threads: usize, input: &Tensor, k: usize, stride: usize) -> Tensor {
    assert_eq!(input.shape().len(), 4, "input must be NHWC");
    let (n, h, w, c) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (ho, wo) = (h.div_ceil(stride), w.div_ceil(stride));
    let pad = (k - 1) / 2;
    let row_len = k * k * c;
    let x = input.data();
    let out: Vec<AtomicU32> = (0..n * ho * wo * row_len)
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();
    parallel_for(threads, n * ho * wo, |rows| {
        for r in rows {
            let ox = r % wo;
            let rest = r / wo;
            let oy = rest % ho;
            let b = rest / ho;
            let base = r * row_len;
            for ky in 0..k {
                let iy = (oy * stride + ky).wrapping_sub(pad);
                for kx in 0..k {
                    let ix = (ox * stride + kx).wrapping_sub(pad);
                    let dst = base + (ky * k + kx) * c;
                    if iy < h && ix < w {
                        let src = ((b * h + iy) * w + ix) * c;
                        for ch in 0..c {
                            out[dst + ch].store(x[src + ch].to_bits(), Ordering::Relaxed);
                        }
                    }
                    // Out-of-bounds taps stay zero (SAME padding).
                }
            }
        }
    });
    Tensor::from_vec(
        &[n * ho * wo, row_len],
        out.into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect(),
    )
}

/// Convolution via im2col + GEMM; numerically equivalent to
/// [`crate::conv::conv2d`].
pub fn conv2d_im2col(threads: usize, input: &Tensor, filter: &Tensor, stride: usize) -> Tensor {
    let (kh, kw, cin, cout) = (
        filter.shape()[0],
        filter.shape()[1],
        filter.shape()[2],
        filter.shape()[3],
    );
    assert_eq!(kh, kw, "im2col path assumes square kernels");
    assert_eq!(cin, input.shape()[3], "channel mismatch");
    let (n, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (ho, wo) = (h.div_ceil(stride), w.div_ceil(stride));
    let patches = im2col(threads, input, kh, stride);
    let m = n * ho * wo;
    let kdim = kh * kw * cin;
    let mut out = vec![0.0f32; m * cout];
    // The HWIO filter is already laid out as a [kdim, cout] matrix.
    matmul(
        threads,
        patches.data(),
        filter.data(),
        &mut out,
        m,
        kdim,
        cout,
    );
    Tensor::from_vec(&[n, ho, wo, cout], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;

    #[test]
    fn matches_direct_convolution() {
        let x = Tensor::sequence(&[2, 7, 7, 5], 1.0);
        let f = Tensor::sequence(&[3, 3, 5, 4], 0.5);
        for stride in [1usize, 2] {
            let direct = conv2d(2, &x, &f, stride);
            let lowered = conv2d_im2col(3, &x, &f, stride);
            assert_eq!(direct.shape(), lowered.shape(), "stride={stride}");
            assert!(
                direct.max_abs_diff(&lowered) < 1e-4,
                "stride={stride}: max diff {}",
                direct.max_abs_diff(&lowered)
            );
        }
    }

    #[test]
    fn patch_matrix_shape_and_padding() {
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let p = im2col(1, &x, 3, 1);
        assert_eq!(p.shape(), &[4, 9]);
        // Top-left output's patch: pad row + pad col, centre = 1.0.
        let first = &p.data()[..9];
        assert_eq!(first[4], 1.0, "centre tap");
        assert_eq!(first[0], 0.0, "padded corner");
        assert_eq!(first[5], 2.0);
        assert_eq!(first[7], 3.0);
        assert_eq!(first[8], 4.0);
    }

    #[test]
    fn thread_counts_agree() {
        let x = Tensor::sequence(&[1, 6, 6, 3], 1.0);
        let f = Tensor::sequence(&[3, 3, 3, 2], 0.5);
        let base = conv2d_im2col(1, &x, &f, 1);
        for threads in [2, 4, 8] {
            assert!(base.max_abs_diff(&conv2d_im2col(threads, &x, &f, 1)) < 1e-5);
        }
    }

    #[test]
    fn one_by_one_kernel_is_a_plain_matmul() {
        let x = Tensor::sequence(&[2, 4, 4, 8], 1.0);
        let f = Tensor::sequence(&[1, 1, 8, 16], 0.5);
        let out = conv2d_im2col(2, &x, &f, 1);
        assert_eq!(out.shape(), &[2, 4, 4, 16]);
        let direct = conv2d(1, &x, &f, 1);
        assert!(direct.max_abs_diff(&out) < 1e-4);
    }
}
