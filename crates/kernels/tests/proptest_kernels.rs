//! Property tests for the real CPU kernels: thread-count invariance (the
//! core guarantee — any concurrency choice computes the same answer) and
//! agreement with naive references.

use nnrt_kernels::conv::{conv2d, conv2d_backprop_filter, conv2d_backprop_input};
use nnrt_kernels::elementwise::{bias_add, bias_add_grad, relu};
use nnrt_kernels::matmul::matmul;
use nnrt_kernels::pooling::{avg_pool2d, max_pool2d};
use nnrt_kernels::softmax::sparse_softmax_cross_entropy;
use nnrt_kernels::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_thread_invariant(
        m in 1usize..=12,
        k in 1usize..=12,
        n in 1usize..=12,
        threads in 1usize..=16,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 9) as f32) - 4.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 5) as f32) * 0.25).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut ct = vec![0.0f32; m * n];
        matmul(1, &a, &b, &mut c1, m, k, n);
        matmul(threads, &a, &b, &mut ct, m, k, n);
        prop_assert_eq!(c1, ct);
    }

    #[test]
    fn conv_and_backprops_thread_invariant(
        nb in 1usize..=3,
        hw in 3usize..=8,
        cin in 1usize..=4,
        cout in 1usize..=4,
        stride in 1usize..=2,
        threads in 2usize..=8,
    ) {
        let x = Tensor::sequence(&[nb, hw, hw, cin], 1.0);
        let f = Tensor::sequence(&[3, 3, cin, cout], 0.5);
        let base = conv2d(1, &x, &f, stride);
        let multi = conv2d(threads, &x, &f, stride);
        prop_assert!(base.max_abs_diff(&multi) < 1e-5);

        let gout = Tensor::sequence(base.shape(), 0.3);
        let df1 = conv2d_backprop_filter(1, &x, &gout, 3, 3, stride);
        let dft = conv2d_backprop_filter(threads, &x, &gout, 3, 3, stride);
        prop_assert!(df1.max_abs_diff(&dft) < 1e-4);

        let dx1 = conv2d_backprop_input(1, x.shape(), &f, &gout, stride);
        let dxt = conv2d_backprop_input(threads, x.shape(), &f, &gout, stride);
        prop_assert!(dx1.max_abs_diff(&dxt) < 1e-4);
    }

    #[test]
    fn pooling_thread_invariant_and_bounded(
        nb in 1usize..=3,
        hw in 2usize..=9,
        c in 1usize..=5,
        k in 1usize..=3,
        stride in 1usize..=3,
        threads in 2usize..=8,
    ) {
        let x = Tensor::sequence(&[nb, hw, hw, c], 2.0);
        let m1 = max_pool2d(1, &x, k, stride);
        let mt = max_pool2d(threads, &x, k, stride);
        prop_assert_eq!(&m1, &mt);
        let a1 = avg_pool2d(1, &x, k, stride);
        let at = avg_pool2d(threads, &x, k, stride);
        prop_assert!(a1.max_abs_diff(&at) < 1e-6);
        // Pooled maxima bound pooled averages.
        for (mx, av) in m1.data().iter().zip(a1.data()) {
            prop_assert!(mx + 1e-6 >= *av);
        }
        // Max pooling output values all exist in the input.
        for v in m1.data() {
            prop_assert!(x.data().contains(v));
        }
    }

    #[test]
    fn relu_idempotent_and_nonnegative(vals in proptest::collection::vec(-10.0f32..10.0, 1..=200), threads in 1usize..=8) {
        let mut a = vals.clone();
        relu(threads, &mut a);
        prop_assert!(a.iter().all(|&v| v >= 0.0));
        let mut b = a.clone();
        relu(threads, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bias_grad_is_column_sum(rows in 1usize..=20, c in 1usize..=8, threads in 1usize..=8) {
        let data: Vec<f32> = (0..rows * c).map(|i| ((i % 13) as f32) - 6.0).collect();
        let grads = bias_add_grad(threads, &data, c);
        for (j, g) in grads.iter().enumerate() {
            let expect: f32 = (0..rows).map(|r| data[r * c + j]).sum();
            prop_assert!((g - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn bias_add_then_grad_roundtrip(rows in 1usize..=16, c in 1usize..=6) {
        let mut data = vec![0.0f32; rows * c];
        let bias: Vec<f32> = (0..c).map(|j| j as f32 + 1.0).collect();
        bias_add(4, &mut data, &bias);
        let grads = bias_add_grad(4, &data, c);
        for (j, g) in grads.iter().enumerate() {
            prop_assert!((g - bias[j] * rows as f32).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_loss_nonnegative_and_thread_invariant(
        rows in 1usize..=12,
        classes in 2usize..=9,
        threads in 2usize..=8,
    ) {
        let logits: Vec<f32> = (0..rows * classes).map(|i| ((i * 37 % 19) as f32) * 0.2 - 1.9).collect();
        let labels: Vec<usize> = (0..rows).map(|r| (r * 3) % classes).collect();
        let mut g1 = vec![0.0f32; rows * classes];
        let l1 = sparse_softmax_cross_entropy(1, &logits, &labels, &mut g1, classes);
        prop_assert!(l1 >= 0.0);
        let mut gt = vec![0.0f32; rows * classes];
        let lt = sparse_softmax_cross_entropy(threads, &logits, &labels, &mut gt, classes);
        prop_assert!((l1 - lt).abs() < 1e-5);
        for (a, b) in g1.iter().zip(&gt) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
