//! # nnrt-rpc
//!
//! A networked job-submission front-end for the [`nnrt_serve`] fleet: the
//! piece that turns the paper's runtime (*"Runtime Concurrency Control and
//! Operation Scheduling for High Performance Neural Network Training"*,
//! Liu et al., IPDPS 2019) from an in-process simulation into a service
//! external clients submit jobs to over a socket.
//!
//! Three layers, all on `std::net` + threads (no async runtime, works
//! offline):
//!
//! * [`protocol`] — versioned, length-prefixed JSON frames; tagged
//!   [`Request`]/[`Response`] messages; a typed error taxonomy whose
//!   `Saturated` frames carry the fleet's concrete `retry_after_secs`
//!   backpressure hint over the wire.
//! * [`server`] — [`FleetServer`]: an accept loop, per-connection reader
//!   threads, and a single service thread that owns the [`nnrt_serve::Fleet`]
//!   behind a bounded command inbox. Idle ticks drive the fleet through the
//!   same event order as [`nnrt_serve::Fleet::run`], so chaos events,
//!   checkpoints, and determinism survive the move onto the network; a
//!   graceful shutdown drains the fleet and flushes the final report plus
//!   the profile-store snapshot.
//! * [`client`] — [`RpcClient`]: blocking, with connect/read timeouts and
//!   honor-the-hint submission retry (exponential backoff capped at the
//!   server's `retry_after_secs`).
//!
//! ```no_run
//! use nnrt_rpc::{FleetServer, RpcClient, ServerConfig, SubmitSpec};
//!
//! let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = RpcClient::connect(server.local_addr()).unwrap();
//! let job = client.submit(&SubmitSpec::new("dcgan")).unwrap();
//! println!("{:?}", client.status(job).unwrap());
//! let report = client.shutdown().unwrap();
//! println!("{report}");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, ClientError, RetryPolicy, RpcClient};
pub use protocol::{
    decode, encode, read_frame, write_frame, ErrorFrame, ErrorKind, FrameError, Request, Response,
    SnapshotInfo, SubmitSpec, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{
    DrainPolicy, FleetServer, ServerConfig, CONNECTION_RETRY_SECS, DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_CONNECTIONS, INBOX_RETRY_SECS,
};
