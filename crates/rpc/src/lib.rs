//! # nnrt-rpc
//!
//! A networked job-submission front-end for the [`nnrt_serve`] fleet: the
//! piece that turns the paper's runtime (*"Runtime Concurrency Control and
//! Operation Scheduling for High Performance Neural Network Training"*,
//! Liu et al., IPDPS 2019) from an in-process simulation into a service
//! external clients submit jobs to over a socket.
//!
//! Four layers, all on `std::net` + two threads (no async runtime, works
//! offline):
//!
//! * [`protocol`] — versioned, length-prefixed JSON frames; tagged
//!   [`Request`]/[`Response`] messages; a typed error taxonomy whose
//!   `Saturated` frames carry the fleet's concrete `retry_after_secs`
//!   backpressure hint over the wire.
//! * [`poll`] — a small vendored readiness poller (epoll on Linux, a
//!   portable `poll(2)` fallback) plus a self-pipe [`poll::Waker`], so one
//!   thread can multiplex thousands of nonblocking sockets.
//! * [`server`] — [`FleetServer`]: an event-loop thread drives every
//!   connection as a pipelining state machine (read-accumulate → decode
//!   frames → ordered response slots → write-drain), and a single service
//!   thread owns the [`nnrt_serve::Fleet`] behind a bounded command inbox.
//!   Idle ticks drive the fleet through the same event order as
//!   [`nnrt_serve::Fleet::run`], so chaos events, checkpoints, and
//!   determinism survive the move onto the network; a graceful shutdown
//!   drains the fleet and flushes the final report plus the profile-store
//!   snapshot. Backpressure is layered: typed `Saturated` frames at the
//!   admission queue and command inbox, one-frame bounces at the
//!   connection cap, and outbox high-water marks that pause reading from
//!   slow consumers.
//! * [`client`] — [`RpcClient`]: blocking, with connect/read timeouts and
//!   honor-the-hint submission retry (seeded decorrelated-jitter backoff
//!   capped at the server's `retry_after_secs`, so a thousand bounced
//!   clients don't reconnect in lockstep).
//!
//! ```no_run
//! use nnrt_rpc::{FleetServer, RpcClient, ServerConfig, SubmitSpec};
//!
//! let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = RpcClient::connect(server.local_addr()).unwrap();
//! let job = client.submit(&SubmitSpec::new("dcgan")).unwrap();
//! println!("{:?}", client.status(job).unwrap());
//! let report = client.shutdown().unwrap();
//! println!("{report}");
//! ```

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod poll;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, ClientError, JitterBackoff, RetryPolicy, RpcClient};
pub use protocol::{
    decode, encode, frame_bytes, frame_from_buf, read_frame, write_frame, ErrorFrame, ErrorKind,
    FrameError, Request, Response, SnapshotInfo, SubmitSpec, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{
    DrainPolicy, FleetServer, ServerConfig, CONNECTION_RETRY_SECS, DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_CONNECTIONS, DEFAULT_PIPELINE_DEPTH, INBOX_RETRY_SECS,
};
