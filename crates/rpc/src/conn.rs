//! Per-connection state machine for the event-loop server.
//!
//! One [`Connection`] owns a nonblocking socket and moves bytes through
//! four stages, each driven by readiness rather than by a blocked thread:
//!
//! ```text
//! readable ─▶ rbuf accumulate ─▶ frame parse ─▶ pending slots ─▶ wbuf drain
//!             (on_readable)      (parse_frames)  (fill, in seq    (flush, on
//!                                                 order)           writable)
//! ```
//!
//! **Pipelining.** A client may send many frames without awaiting
//! responses. Each parsed request claims a *slot* in an ordered queue; a
//! slot is either filled immediately at the edge (inbox saturation, decode
//! errors) or later by the service thread's reply. [`Connection::flush`]
//! only serializes filled slots from the *front* of the queue, so responses
//! always leave in request order no matter what order answers arrive in.
//!
//! **Backpressure watermarks.** The outbound buffer has a high-water mark:
//! once a slow reader lets it grow past [`HIGH_WATER`], the connection's
//! desired interest drops `READABLE` (the poller stops reporting its bytes,
//! TCP flow control pushes back on the client) until the outbox drains
//! below [`LOW_WATER`]. The pending-slot queue is bounded by the server's
//! pipeline depth the same way: at capacity, reading pauses until a slot
//! frees.

use crate::protocol::{
    decode, encode, frame_bytes, frame_from_buf, ErrorFrame, ErrorKind, FrameError, Request,
    Response,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Outbox bytes above which a connection stops reading new requests.
pub(crate) const HIGH_WATER: usize = 256 * 1024;

/// Outbox bytes below which a read-paused connection resumes reading.
pub(crate) const LOW_WATER: usize = 64 * 1024;

/// Bytes pulled off the socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Soft cap on the unparsed inbound buffer: one maximum frame plus its
/// header always fits, so a compliant client can never deadlock, but a
/// firehose of tiny frames cannot grow the buffer without bound while the
/// pipeline-depth gate holds parsing back.
const RBUF_CAP: usize = crate::protocol::MAX_FRAME_LEN as usize + 5;

/// One in-flight request: parsed, awaiting (or holding) its response.
struct Slot {
    /// Per-connection arrival index; replies route back by `(conn, seq)`.
    seq: u64,
    /// `None` until the service thread answers; edge rejections are born
    /// filled.
    response: Option<Response>,
    /// This slot's request was a `Shutdown` handed to the service thread:
    /// filling it also begins closing the connection (the `Bye` is the last
    /// frame the client gets).
    bye: bool,
}

/// One client connection owned by the event loop.
pub(crate) struct Connection {
    /// Server-lifetime-unique id; never reused, unlike slab slots, so a
    /// late reply for a closed connection can never reach a new one.
    pub id: u64,
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Whether this connection holds a slot under `max_connections`
    /// (cap-bounced connections don't — they exist only to carry one
    /// `Saturated` frame out).
    pub counted: bool,
    /// Wall-clock instant of the last byte moved in either direction; the
    /// idle sweep compares it against the server's idle timeout.
    pub last_activity: Instant,
    /// The interest bits currently registered with the poller; the pump
    /// only issues `reregister` syscalls when the desired bits differ.
    pub registered_interest: u8,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    pending: VecDeque<Slot>,
    next_seq: u64,
    close_after_flush: bool,
    peer_closed: bool,
    broken: bool,
    read_paused: bool,
}

impl Connection {
    /// Wraps an accepted socket: nonblocking, Nagle off.
    pub fn new(id: u64, stream: TcpStream, counted: bool) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            id,
            stream,
            counted,
            last_activity: Instant::now(),
            registered_interest: 0,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            close_after_flush: false,
            peer_closed: false,
            broken: false,
            read_paused: false,
        })
    }

    /// A cap-bounced connection: it carries exactly one pre-filled response
    /// frame (the typed `Saturated` refusal) and closes once it drains.
    pub fn reject(id: u64, stream: TcpStream, response: Response) -> io::Result<Connection> {
        let mut conn = Connection::new(id, stream, false)?;
        conn.pending.push_back(Slot {
            seq: 0,
            response: Some(response),
            bye: false,
        });
        conn.next_seq = 1;
        conn.close_after_flush = true;
        Ok(conn)
    }

    /// Drains the socket's receive queue into the accumulation buffer
    /// (until `WouldBlock`, EOF, or the buffer's soft cap).
    pub fn on_readable(&mut self) {
        if self.broken || self.peer_closed {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        while self.rbuf.len() < RBUF_CAP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.broken = true;
                    break;
                }
            }
        }
    }

    /// Parses complete frames off the front of the inbound buffer — at most
    /// up to `depth` in-flight slots — and claims a response slot for each.
    ///
    /// `sink` receives `(conn_id, seq, request)` for every well-formed
    /// request and decides where it goes: `None` means it was enqueued for
    /// the service thread (the slot fills later via [`Connection::fill`]);
    /// `Some(response)` is an edge answer (inbox saturation, shutdown) that
    /// fills the slot immediately — still delivered in request order, since
    /// only front-filled slots flush.
    ///
    /// Malformed payloads inside an intact frame answer `BadRequest` and
    /// the connection lives on (length-prefixed framing stays synchronized);
    /// frame-level poison (bad length prefix, version skew) answers once
    /// and then closes, because the byte stream can never resynchronize.
    ///
    /// Returns the number of frames consumed.
    pub fn parse_frames(
        &mut self,
        depth: usize,
        sink: &mut dyn FnMut(u64, u64, Request) -> Option<Response>,
    ) -> usize {
        let mut parsed = 0;
        while !self.close_after_flush && !self.broken && self.pending.len() < depth {
            match frame_from_buf(&self.rbuf) {
                Ok(None) => break,
                Ok(Some((payload, consumed))) => {
                    self.rbuf.drain(..consumed);
                    parsed += 1;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    match decode::<Request>(&payload) {
                        Ok(request) => {
                            let shutdown = matches!(request, Request::Shutdown);
                            let response = sink(self.id, seq, request);
                            let bye = shutdown && response.is_none();
                            self.pending.push_back(Slot { seq, response, bye });
                        }
                        Err(e) => self.pending.push_back(Slot {
                            seq,
                            response: Some(Response::Error(ErrorFrame {
                                kind: ErrorKind::BadRequest,
                                message: e.to_string(),
                                retry_after_secs: None,
                            })),
                            bye: false,
                        }),
                    }
                }
                Err(e) => {
                    let kind = match &e {
                        FrameError::Version(_) => ErrorKind::VersionMismatch,
                        _ => ErrorKind::BadRequest,
                    };
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.pending.push_back(Slot {
                        seq,
                        response: Some(Response::Error(ErrorFrame {
                            kind,
                            message: e.to_string(),
                            retry_after_secs: None,
                        })),
                        bye: false,
                    });
                    self.rbuf.clear();
                    self.close_after_flush = true;
                    break;
                }
            }
        }
        parsed
    }

    /// Routes one service reply into its slot. Replies for slots this
    /// connection no longer holds (it never happens under the routing
    /// contract, but a defensive server drops rather than panics) are
    /// ignored.
    pub fn fill(&mut self, seq: u64, response: Response) {
        if let Some(slot) = self
            .pending
            .iter_mut()
            .find(|s| s.seq == seq && s.response.is_none())
        {
            if slot.bye {
                self.close_after_flush = true;
            }
            slot.response = Some(response);
        }
    }

    /// Fills every still-unanswered slot with `response` — the shutdown
    /// drain's "the service thread is gone" path.
    pub fn fill_all_unanswered(&mut self, response: &Response) {
        for slot in self.pending.iter_mut() {
            if slot.response.is_none() {
                slot.response = Some(response.clone());
            }
        }
    }

    /// Whether any slot is still waiting on the service thread — such a
    /// connection is *not* idle, however long its socket has been silent.
    pub fn awaiting_service(&self) -> bool {
        self.pending.iter().any(|s| s.response.is_none())
    }

    /// Serializes every answered front slot into the outbox and drains as
    /// much of it as the socket accepts without blocking.
    pub fn flush(&mut self) {
        while let Some(front) = self.pending.front() {
            if front.response.is_none() {
                break;
            }
            let slot = self.pending.pop_front().expect("front exists");
            let response = slot.response.expect("front is answered");
            self.wbuf
                .extend_from_slice(&frame_bytes(&encode(&response)));
        }
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.broken = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.broken = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > HIGH_WATER {
            // Reclaim the drained prefix once it outweighs what remains.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// Bytes serialized but not yet accepted by the socket.
    pub fn outbox_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The interest bits this connection wants from the poller right now:
    /// `WRITABLE` while the outbox holds bytes; `READABLE` unless closing,
    /// at pipeline capacity, or read-paused by the outbox watermark (pause
    /// at [`HIGH_WATER`], resume at [`LOW_WATER`] — hysteresis, so a
    /// hovering outbox doesn't flap interest every frame).
    pub fn desired_interest(&mut self, depth: usize) -> u8 {
        let out = self.outbox_bytes();
        if out >= HIGH_WATER {
            self.read_paused = true;
        } else if out <= LOW_WATER {
            self.read_paused = false;
        }
        let mut interest = 0;
        if out > 0 {
            interest |= crate::poll::WRITABLE;
        }
        let closing = self.close_after_flush || self.peer_closed || self.broken;
        if !closing && !self.read_paused && self.pending.len() < depth {
            interest |= crate::poll::READABLE;
        }
        interest
    }

    /// Begins a graceful close: everything already answered still flushes,
    /// then the socket drops.
    pub fn begin_close(&mut self) {
        self.close_after_flush = true;
    }

    /// Whether the event loop should drop this connection now: the socket
    /// broke, or it is closing (client EOF or server-initiated) with no
    /// response left to deliver.
    pub fn should_close(&self) -> bool {
        self.broken
            || ((self.close_after_flush || self.peer_closed)
                && self.pending.is_empty()
                && self.outbox_bytes() == 0
                && (self.close_after_flush || !self.has_buffered_frames()))
    }

    /// Whether the inbound buffer still holds at least one complete frame —
    /// a half-closed client (sent its pipeline, shut down its write side)
    /// is served to the last frame before the connection closes.
    fn has_buffered_frames(&self) -> bool {
        matches!(frame_from_buf(&self.rbuf), Ok(Some(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, Request};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn push_request(conn: &mut Connection, req: &Request) {
        conn.rbuf.extend_from_slice(&frame_bytes(&encode(req)));
    }

    #[test]
    fn responses_flush_in_request_order_despite_out_of_order_fills() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(1, server, true).unwrap();
        push_request(&mut conn, &Request::Status { job_id: 10 });
        push_request(&mut conn, &Request::Status { job_id: 11 });
        push_request(&mut conn, &Request::ListJobs);

        let mut seen = Vec::new();
        let parsed = conn.parse_frames(16, &mut |_, seq, req| {
            seen.push((seq, req.kind()));
            None
        });
        assert_eq!(parsed, 3);
        assert_eq!(seen, vec![(0, "status"), (1, "status"), (2, "list_jobs")]);
        assert!(conn.awaiting_service());

        // Answer the middle and last requests first: nothing may flush.
        conn.fill(1, Response::Submitted { job_id: 11 });
        conn.fill(2, Response::Jobs(vec![]));
        conn.flush();
        assert_eq!(conn.outbox_bytes(), 0, "head-of-line slot gates the flush");

        // Answering the head releases all three, in request order.
        conn.fill(0, Response::Submitted { job_id: 10 });
        conn.flush();
        assert!(!conn.awaiting_service());
        client.set_nonblocking(false).unwrap();
        let order: Vec<Response> = (0..3)
            .map(|_| {
                let payload = read_frame(&mut client).unwrap();
                decode(&payload).unwrap()
            })
            .collect();
        assert_eq!(
            order,
            vec![
                Response::Submitted { job_id: 10 },
                Response::Submitted { job_id: 11 },
                Response::Jobs(vec![]),
            ]
        );
    }

    #[test]
    fn garbage_payload_answers_bad_request_without_poisoning_the_pipeline() {
        let (_client, server) = pair();
        let mut conn = Connection::new(2, server, true).unwrap();
        push_request(&mut conn, &Request::ListJobs);
        conn.rbuf
            .extend_from_slice(&frame_bytes("{\"type\": \"fly\"}"));
        push_request(&mut conn, &Request::ListJobs);

        let mut kinds = Vec::new();
        conn.parse_frames(16, &mut |_, _, req| {
            kinds.push(req.kind());
            Some(Response::Jobs(vec![]))
        });
        // Both well-formed requests reached the sink; the garbage one got an
        // edge BadRequest in between and the connection is still open.
        assert_eq!(kinds, vec!["list_jobs", "list_jobs"]);
        assert!(!conn.should_close());
        assert_eq!(conn.pending.len(), 3);
        assert!(conn.pending.iter().all(|s| s.response.is_some()));
    }

    #[test]
    fn frame_level_poison_closes_after_one_typed_answer() {
        let (_client, server) = pair();
        let mut conn = Connection::new(3, server, true).unwrap();
        // A zero length prefix can never resynchronize.
        conn.rbuf.extend_from_slice(&0u32.to_be_bytes());
        conn.parse_frames(16, &mut |_, _, _| None);
        assert!(conn.close_after_flush);
        conn.flush();
        assert!(conn.should_close());
    }

    #[test]
    fn pipeline_depth_gates_parsing_until_slots_free() {
        let (_client, server) = pair();
        let mut conn = Connection::new(4, server, true).unwrap();
        for _ in 0..5 {
            push_request(&mut conn, &Request::ListJobs);
        }
        assert_eq!(conn.parse_frames(2, &mut |_, _, _| None), 2);
        assert_eq!(conn.desired_interest(2) & crate::poll::READABLE, 0);
        conn.fill(0, Response::Jobs(vec![]));
        conn.fill(1, Response::Jobs(vec![]));
        conn.flush();
        // Freed slots admit the buffered remainder.
        assert_eq!(conn.parse_frames(2, &mut |_, _, _| None), 2);
        assert_eq!(conn.parse_frames(2, &mut |_, _, _| None), 0);
    }

    #[test]
    fn watermark_hysteresis_pauses_and_resumes_reading() {
        let (_client, server) = pair();
        let mut conn = Connection::new(5, server, true).unwrap();
        // Force an over-high-water outbox without touching the socket.
        conn.wbuf = vec![0u8; HIGH_WATER + 1];
        conn.wpos = 0;
        assert_eq!(conn.desired_interest(16) & crate::poll::READABLE, 0);
        // Draining to just under high water is not enough — hysteresis.
        conn.wpos = 2;
        assert_eq!(conn.desired_interest(16) & crate::poll::READABLE, 0);
        // Below low water, reading resumes.
        conn.wpos = conn.wbuf.len() - LOW_WATER;
        assert_ne!(conn.desired_interest(16) & crate::poll::READABLE, 0);
    }

    #[test]
    fn reject_connections_close_once_their_frame_drains() {
        let (mut client, server) = pair();
        let refusal = Response::Error(ErrorFrame {
            kind: ErrorKind::Saturated,
            message: "cap".to_string(),
            retry_after_secs: Some(0.5),
        });
        let mut conn = Connection::reject(6, server, refusal.clone()).unwrap();
        assert!(!conn.counted);
        assert!(!conn.should_close(), "the refusal still has to flush");
        conn.flush();
        assert!(conn.should_close());
        drop(conn);
        client.set_nonblocking(false).unwrap();
        let payload = read_frame(&mut client).unwrap();
        assert_eq!(decode::<Response>(&payload).unwrap(), refusal);
    }
}
