//! Wire format: versioned, length-prefixed JSON frames.
//!
//! Every message on the socket is one frame:
//!
//! ```text
//! +----------------------+-----------+---------------------------+
//! | length: u32, big-end | version   | UTF-8 JSON payload        |
//! | (version + payload)  | byte (=1) | (one tagged object)       |
//! +----------------------+-----------+---------------------------+
//! ```
//!
//! The length covers the version byte plus the JSON payload and is capped at
//! [`MAX_FRAME_LEN`], so a garbage prefix cannot make a peer allocate
//! unboundedly. The payload is a single JSON object tagged by a `"type"`
//! member — the same hand-rolled tagged-object convention the chaos module
//! uses, because the vendored serde derive cannot handle payload-carrying
//! enums. Unknown tags, missing fields, and version skew all decode to
//! typed errors, never panics; a server answers them with an
//! [`ErrorFrame`] rather than dropping the connection.
//!
//! The error taxonomy ([`ErrorKind`]) distinguishes backpressure
//! (`Saturated`, which carries the fleet's concrete `retry_after_secs`
//! hint over the wire) from caller mistakes (`EmptyJob`, `UnknownModel`,
//! `UnknownJob`, `BadRequest`) and lifecycle states (`VersionMismatch`,
//! `ShuttingDown`), so clients can decide between retrying, fixing the
//! request, and giving up.

use nnrt_obs::Event;
use nnrt_serve::{JobStatus, StoreStats};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Protocol version spoken by this build; the first payload byte of every
/// frame. Bumped on incompatible changes to the frame or message layout.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on `version byte + JSON payload` length, bytes. Frames
/// claiming more are rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// A protocol-level failure while reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (includes clean EOF between frames).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`] or is zero.
    BadLength(u32),
    /// The frame's version byte differs from [`PROTOCOL_VERSION`].
    Version(u8),
    /// The payload is not valid UTF-8 JSON of the expected shape.
    Decode(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadLength(n) => {
                write!(f, "frame length {n} outside 1..={MAX_FRAME_LEN}")
            }
            FrameError::Version(v) => {
                write!(
                    f,
                    "peer speaks protocol version {v}, not {PROTOCOL_VERSION}"
                )
            }
            FrameError::Decode(msg) => write!(f, "undecodable frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serializes one frame (length prefix + version byte + `payload` JSON
/// text) into a single contiguous buffer — the wire bytes `write_frame`
/// emits and `read_frame`/`frame_from_buf` consume.
pub fn frame_bytes(payload: &str) -> Vec<u8> {
    let len = payload.len() as u32 + 1;
    let mut buf = Vec::with_capacity(4 + 1 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.push(PROTOCOL_VERSION);
    buf.extend_from_slice(payload.as_bytes());
    buf
}

/// Writes one frame (version byte + `payload` JSON text) to `w` as a single
/// write — header, version, and payload go out in one syscall instead of
/// three, so a frame never straddles a kernel send-buffer boundary
/// needlessly and small requests stay one packet under `TCP_NODELAY`.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    w.write_all(&frame_bytes(payload))?;
    w.flush()
}

/// Tries to parse one complete frame from the front of an accumulation
/// buffer (the event-loop server's per-connection read buffer).
///
/// Returns `Ok(Some((payload, consumed)))` when a full frame is present —
/// the caller drains `consumed` bytes; `Ok(None)` when the buffer holds
/// only a frame prefix (read more and retry); and a typed [`FrameError`]
/// when the prefix can never become a valid frame (bad length, version
/// skew, non-UTF-8 payload), in which case the connection is poisoned.
pub fn frame_from_buf(buf: &[u8]) -> Result<Option<(String, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(FrameError::BadLength(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let version = buf[4];
    if version != PROTOCOL_VERSION {
        return Err(FrameError::Version(version));
    }
    let payload = std::str::from_utf8(&buf[5..total])
        .map_err(|e| FrameError::Decode(e.to_string()))?
        .to_string();
    Ok(Some((payload, total)))
}

/// Reads one frame from `r`, returning its JSON payload text.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(FrameError::BadLength(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return Err(FrameError::Version(version));
    }
    String::from_utf8(payload.split_off(1)).map_err(|e| FrameError::Decode(e.to_string()))
}

/// What a tenant asks over the wire: submit a training job (the server
/// resolves `model` + `batch` to a graph through the shared
/// [`nnrt_models::by_name`] registry), query one job or all jobs, read the
/// profile store's snapshot and counters, or shut the service down.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a training job.
    Submit(SubmitSpec),
    /// Query one job by id.
    Status {
        /// Id returned by an earlier `Submit`.
        job_id: u64,
    },
    /// Query every job the fleet has admitted.
    ListJobs,
    /// Read the profile store: entry count, hit/miss/eviction counters,
    /// and the versioned snapshot document.
    Snapshot,
    /// Scrape the fleet's metrics: the Prometheus-style text exposition
    /// (both clock domains), gauges refreshed at scrape time.
    Metrics,
    /// Read the fleet's retained structured events (both clock domains,
    /// sim first, each in sequence order).
    Events,
    /// Drain the fleet, flush the final report (and the profile-store
    /// snapshot, if the server persists one), and stop serving.
    Shutdown,
}

impl Request {
    /// Stable lowercase name of the request kind — the `kind` label the
    /// server's per-request metrics use.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Submit(_) => "submit",
            Request::Status { .. } => "status",
            Request::ListJobs => "list_jobs",
            Request::Snapshot => "snapshot",
            Request::Metrics => "metrics",
            Request::Events => "events",
            Request::Shutdown => "shutdown",
        }
    }
}

/// The submit request's payload: everything a [`nnrt_serve::JobSpec`] needs
/// except the graph, which the server builds from `(model, batch)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitSpec {
    /// Job name; an empty string lets the server pick `{model}-{id}`.
    pub name: String,
    /// Model family, resolved via [`nnrt_models::by_name`].
    pub model: String,
    /// Batch size; `0` uses the model's paper-default batch.
    pub batch: u64,
    /// Training steps to run.
    pub steps: u32,
    /// Admission priority (higher first).
    pub priority: u8,
    /// Deadline weight (higher first within a priority class).
    pub weight: f64,
}

impl SubmitSpec {
    /// A spec for `model` with sensible defaults: default batch, 3 steps,
    /// priority 0, weight 1.0, server-assigned name.
    pub fn new(model: &str) -> Self {
        SubmitSpec {
            name: String::new(),
            model: model.to_string(),
            batch: 0,
            steps: 3,
            priority: 0,
            weight: 1.0,
        }
    }
}

/// Why the server refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Backpressure: the admission queue (or the server's command inbox) is
    /// full. The frame carries a positive `retry_after_secs` hint.
    Saturated,
    /// The job has no work (zero steps, or a model with an empty graph).
    EmptyJob,
    /// The submit's `model` names nothing in the registry.
    UnknownModel,
    /// The status query's `job_id` was never admitted by this fleet.
    UnknownJob,
    /// The request frame did not decode to a known request.
    BadRequest,
    /// The client's frame version differs from the server's.
    VersionMismatch,
    /// The server is draining after a `Shutdown` and accepts no new work.
    ShuttingDown,
}

/// A typed refusal, sent instead of the success response. `Saturated`
/// frames carry the fleet's `retry_after_secs` hint (simulated seconds —
/// an upper bound a real-time client should cap its backoff at, not an
/// exact wall-clock wait).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorFrame {
    /// The refusal's category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// For `Saturated`: how long to wait before retrying, seconds.
    pub retry_after_secs: Option<f64>,
}

/// The profile store's state, answering a `Snapshot` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Curve pairs currently resident.
    pub entries: u64,
    /// Keys served from the store across all lookups.
    pub hits: u64,
    /// Keys requested but absent across all lookups.
    pub misses: u64,
    /// Entries evicted by the byte quota or the LRU cap.
    pub evictions: u64,
    /// Serialized bytes those evictions released.
    pub evicted_bytes: u64,
    /// `hits / (hits + misses)`, or `0.0` before any lookup.
    pub hit_rate: f64,
    /// The versioned snapshot document ([`nnrt_serve::ProfileStore`] JSON),
    /// restorable into another store.
    pub snapshot: String,
}

impl SnapshotInfo {
    /// Builds the response payload from a store's entry count, counters,
    /// and snapshot document.
    pub fn new(entries: usize, stats: StoreStats, snapshot: String) -> Self {
        SnapshotInfo {
            entries: entries as u64,
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            evicted_bytes: stats.evicted_bytes,
            hit_rate: stats.hit_rate(),
            snapshot,
        }
    }
}

/// What the server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submit was admitted under this id.
    Submitted {
        /// Fleet-unique job id; the handle for later `Status` queries.
        job_id: u64,
    },
    /// One job's point-in-time status.
    Job(JobStatus),
    /// Every admitted job's status, sorted by id.
    Jobs(Vec<JobStatus>),
    /// The profile store's counters and snapshot.
    Snapshot(SnapshotInfo),
    /// The metrics exposition text.
    Metrics {
        /// Prometheus-style text exposition (see `nnrt_obs::Registry`).
        text: String,
    },
    /// The retained structured events.
    Events(Vec<Event>),
    /// The server drained the fleet and is stopping; `report` is the final
    /// [`nnrt_serve::FleetReport`] as canonical JSON.
    Bye {
        /// `FleetReport::to_json()` of the drained fleet.
        report: String,
    },
    /// The request was refused.
    Error(ErrorFrame),
}

// ---------------------------------------------------------------------------
// Tagged-object encoding (the vendored serde derive cannot do payload
// enums, so Request/Response are written out by hand).
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn tag_of(v: &Value) -> Result<&str, SerdeError> {
    v.get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| SerdeError::msg("message object lacks a string `type` tag"))
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, SerdeError> {
    v.get(name)
        .ok_or_else(|| SerdeError::msg(format!("missing field `{name}`")))
}

impl Serialize for Request {
    fn to_json_value(&self) -> Value {
        match self {
            Request::Submit(spec) => obj(vec![
                ("type", Value::Str("submit".to_string())),
                ("spec", spec.to_json_value()),
            ]),
            Request::Status { job_id } => obj(vec![
                ("type", Value::Str("status".to_string())),
                ("job_id", Value::Uint(*job_id)),
            ]),
            Request::ListJobs => obj(vec![("type", Value::Str("list_jobs".to_string()))]),
            Request::Snapshot => obj(vec![("type", Value::Str("snapshot".to_string()))]),
            Request::Metrics => obj(vec![("type", Value::Str("metrics".to_string()))]),
            Request::Events => obj(vec![("type", Value::Str("events".to_string()))]),
            Request::Shutdown => obj(vec![("type", Value::Str("shutdown".to_string()))]),
        }
    }
}

impl Deserialize for Request {
    fn from_json_value(v: &Value) -> Result<Self, SerdeError> {
        match tag_of(v)? {
            "submit" => Ok(Request::Submit(SubmitSpec::from_json_value(field(
                v, "spec",
            )?)?)),
            "status" => Ok(Request::Status {
                job_id: u64::from_json_value(field(v, "job_id")?)?,
            }),
            "list_jobs" => Ok(Request::ListJobs),
            "snapshot" => Ok(Request::Snapshot),
            "metrics" => Ok(Request::Metrics),
            "events" => Ok(Request::Events),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(SerdeError::msg(format!("unknown request type `{other}`"))),
        }
    }
}

impl Serialize for Response {
    fn to_json_value(&self) -> Value {
        match self {
            Response::Submitted { job_id } => obj(vec![
                ("type", Value::Str("submitted".to_string())),
                ("job_id", Value::Uint(*job_id)),
            ]),
            Response::Job(status) => obj(vec![
                ("type", Value::Str("job".to_string())),
                ("job", status.to_json_value()),
            ]),
            Response::Jobs(jobs) => obj(vec![
                ("type", Value::Str("jobs".to_string())),
                ("jobs", jobs.to_json_value()),
            ]),
            Response::Snapshot(info) => obj(vec![
                ("type", Value::Str("snapshot".to_string())),
                ("store", info.to_json_value()),
            ]),
            Response::Metrics { text } => obj(vec![
                ("type", Value::Str("metrics".to_string())),
                ("text", Value::Str(text.clone())),
            ]),
            Response::Events(events) => obj(vec![
                ("type", Value::Str("events".to_string())),
                ("events", events.to_json_value()),
            ]),
            Response::Bye { report } => obj(vec![
                ("type", Value::Str("bye".to_string())),
                ("report", Value::Str(report.clone())),
            ]),
            Response::Error(frame) => obj(vec![
                ("type", Value::Str("error".to_string())),
                ("error", frame.to_json_value()),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn from_json_value(v: &Value) -> Result<Self, SerdeError> {
        match tag_of(v)? {
            "submitted" => Ok(Response::Submitted {
                job_id: u64::from_json_value(field(v, "job_id")?)?,
            }),
            "job" => Ok(Response::Job(JobStatus::from_json_value(field(v, "job")?)?)),
            "jobs" => Ok(Response::Jobs(Vec::from_json_value(field(v, "jobs")?)?)),
            "snapshot" => Ok(Response::Snapshot(SnapshotInfo::from_json_value(field(
                v, "store",
            )?)?)),
            "metrics" => Ok(Response::Metrics {
                text: String::from_json_value(field(v, "text")?)?,
            }),
            "events" => Ok(Response::Events(Vec::from_json_value(field(v, "events")?)?)),
            "bye" => Ok(Response::Bye {
                report: String::from_json_value(field(v, "report")?)?,
            }),
            "error" => Ok(Response::Error(ErrorFrame::from_json_value(field(
                v, "error",
            )?)?)),
            other => Err(SerdeError::msg(format!("unknown response type `{other}`"))),
        }
    }
}

/// Encodes a message to its JSON payload text.
pub fn encode<T: Serialize>(msg: &T) -> String {
    serde_json::to_string(msg).expect("protocol messages serialize")
}

/// Decodes a JSON payload into a message.
pub fn decode<T: Deserialize>(payload: &str) -> Result<T, FrameError> {
    serde_json::from_str(payload).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_serve::{JobPhase, JobStatus};

    fn round_trip_request(req: Request) {
        let text = encode(&req);
        let back: Request = decode(&text).expect("request decodes");
        assert_eq!(req, back, "payload was: {text}");
    }

    fn round_trip_response(resp: Response) {
        let text = encode(&resp);
        let back: Response = decode(&text).expect("response decodes");
        assert_eq!(resp, back, "payload was: {text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Submit(SubmitSpec {
            name: "dcgan-a".to_string(),
            model: "dcgan".to_string(),
            batch: 4,
            steps: 3,
            priority: 2,
            weight: 1.5,
        }));
        round_trip_request(Request::Status { job_id: 7 });
        round_trip_request(Request::ListJobs);
        round_trip_request(Request::Snapshot);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Events);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Submitted { job_id: 3 });
        round_trip_response(Response::Job(JobStatus {
            id: 3,
            name: "dcgan-3".to_string(),
            model: "dcgan".to_string(),
            phase: JobPhase::Running,
            steps_done: 1,
            steps: 3,
            node: Some(0),
            durability_disabled: false,
        }));
        round_trip_response(Response::Jobs(vec![]));
        round_trip_response(Response::Metrics {
            text: "# TYPE nnrt_queue_depth gauge\nnnrt_queue_depth{clock=\"sim\"} 2\n".to_string(),
        });
        round_trip_response(Response::Events(vec![nnrt_obs::Event {
            seq: 0,
            at: 1.5,
            clock: nnrt_obs::Clock::Sim,
            kind: nnrt_obs::EventKind::Place,
            job: Some(1),
            node: Some(0),
            detail: "dcgan-1".to_string(),
        }]));
        round_trip_response(Response::Snapshot(SnapshotInfo {
            entries: 12,
            hits: 30,
            misses: 6,
            evictions: 0,
            evicted_bytes: 0,
            hit_rate: 30.0 / 36.0,
            snapshot: "{}".to_string(),
        }));
        round_trip_response(Response::Bye {
            report: "{\"jobs\": []}".to_string(),
        });
        round_trip_response(Response::Error(ErrorFrame {
            kind: ErrorKind::Saturated,
            message: "queue full".to_string(),
            retry_after_secs: Some(2.25),
        }));
        round_trip_response(Response::Error(ErrorFrame {
            kind: ErrorKind::UnknownModel,
            message: "no such model".to_string(),
            retry_after_secs: None,
        }));
    }

    #[test]
    fn saturated_frames_carry_the_retry_hint_over_the_wire() {
        let text = encode(&Response::Error(ErrorFrame {
            kind: ErrorKind::Saturated,
            message: "admission queue saturated".to_string(),
            retry_after_secs: Some(4.125),
        }));
        let back: Response = decode(&text).unwrap();
        match back {
            Response::Error(frame) => {
                assert_eq!(frame.kind, ErrorKind::Saturated);
                assert_eq!(frame.retry_after_secs, Some(4.125));
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn golden_frame_bytes_layout_is_stable() {
        // The exact wire bytes for the payload `{}`: 4-byte big-endian
        // length (payload + version byte = 3), version 1, then the JSON.
        let golden = [0u8, 0, 0, 3, 1, b'{', b'}'];
        assert_eq!(frame_bytes("{}"), golden);

        // The single-buffer writer emits byte-identical frames.
        let mut written = Vec::new();
        write_frame(&mut written, "{}").unwrap();
        assert_eq!(written, golden);

        // And both readers agree on those bytes.
        assert_eq!(
            read_frame(&mut std::io::Cursor::new(golden.to_vec())).unwrap(),
            "{}"
        );
        assert_eq!(
            frame_from_buf(&golden).unwrap(),
            Some(("{}".to_string(), golden.len()))
        );
    }

    #[test]
    fn incremental_parser_handles_split_and_concatenated_frames() {
        let mut wire = frame_bytes("{\"type\": \"list_jobs\"}");
        wire.extend_from_slice(&frame_bytes("{\"type\": \"shutdown\"}"));

        // Every proper prefix of the first frame parses to "incomplete".
        let first_len = frame_bytes("{\"type\": \"list_jobs\"}").len();
        for cut in 0..first_len {
            assert_eq!(frame_from_buf(&wire[..cut]).unwrap(), None, "cut {cut}");
        }

        // A buffer holding both frames yields them front-to-back.
        let (payload, consumed) = frame_from_buf(&wire).unwrap().unwrap();
        assert_eq!(payload, "{\"type\": \"list_jobs\"}");
        let (payload, consumed2) = frame_from_buf(&wire[consumed..]).unwrap().unwrap();
        assert_eq!(payload, "{\"type\": \"shutdown\"}");
        assert_eq!(consumed + consumed2, wire.len());

        // Poison prefixes are typed errors, same taxonomy as read_frame.
        assert!(matches!(
            frame_from_buf(&0u32.to_be_bytes()),
            Err(FrameError::BadLength(0))
        ));
        assert!(matches!(
            frame_from_buf(&(MAX_FRAME_LEN + 1).to_be_bytes()),
            Err(FrameError::BadLength(_))
        ));
        let mut skewed = 2u32.to_be_bytes().to_vec();
        skewed.push(PROTOCOL_VERSION + 1);
        skewed.push(b'x');
        assert!(matches!(
            frame_from_buf(&skewed),
            Err(FrameError::Version(v)) if v == PROTOCOL_VERSION + 1
        ));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\": \"list_jobs\"}").unwrap();
        write_frame(&mut buf, "{\"type\": \"shutdown\"}").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            "{\"type\": \"list_jobs\"}"
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), "{\"type\": \"shutdown\"}");
        // A clean EOF between frames surfaces as an Io error.
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_zero_and_version_skewed_frames_are_typed_errors() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(huge)),
            Err(FrameError::BadLength(_))
        ));

        let zero = 0u32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(zero)),
            Err(FrameError::BadLength(0))
        ));

        let mut skewed = Vec::new();
        skewed.extend_from_slice(&2u32.to_be_bytes());
        skewed.push(PROTOCOL_VERSION + 1);
        skewed.push(b'x');
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(skewed)),
            Err(FrameError::Version(v)) if v == PROTOCOL_VERSION + 1
        ));
    }

    #[test]
    fn garbage_payloads_decode_to_typed_errors() {
        assert!(matches!(
            decode::<Request>("{nonsense"),
            Err(FrameError::Decode(_))
        ));
        assert!(matches!(
            decode::<Request>("{\"type\": \"fly\"}"),
            Err(FrameError::Decode(_))
        ));
        assert!(matches!(
            decode::<Request>("{\"type\": \"status\"}"),
            Err(FrameError::Decode(_)),
        ));
        assert!(matches!(
            decode::<Response>("{\"type\": \"submitted\"}"),
            Err(FrameError::Decode(_)),
        ));
    }
}
