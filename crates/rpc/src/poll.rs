//! A small vendored readiness poller: epoll on Linux, `poll(2)` elsewhere.
//!
//! This is the kernel-facing quarter of the event-loop server — the piece
//! that multiplexes thousands of nonblocking sockets onto one thread, the
//! same scheduling discipline the paper applies to operators (many ready
//! units, few execution resources). It is deliberately tiny: level-triggered
//! readiness only, `usize` tokens, no timers, no ownership of the file
//! descriptors it watches. The container pins no external crates, so the
//! syscalls are declared directly against the platform libc that every Rust
//! binary already links.
//!
//! Two backends behind one [`Poller`] type:
//!
//! * **epoll** (Linux): O(ready) wakeups — the fleet's front door scales to
//!   thousands of mostly-idle connections.
//! * **`poll(2)`** (any Unix, and the explicit [`Poller::portable`]
//!   constructor): O(watched) per wait, standards-portable, and the fallback
//!   if `epoll_create1` is unavailable at runtime.
//!
//! [`Waker`] is the cross-thread doorbell: a nonblocking self-pipe whose
//! read end sits in the poller's interest set, so a thread that finishes
//! work off-loop (the fleet service thread answering a request) can knock
//! the poller out of its wait.

use std::io;
use std::os::raw::{c_int, c_short, c_ulong, c_void};
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// Interest bit: wake when the fd has bytes to read (or EOF / error).
pub const READABLE: u8 = 0b01;
/// Interest bit: wake when the fd can accept writes.
pub const WRITABLE: u8 = 0b10;

/// One readiness event returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is readable (includes EOF and error conditions, so a read
    /// will not block and will surface the condition).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored.
    pub hangup: bool,
}

// --- libc declarations -----------------------------------------------------
//
// Every Rust binary links the platform C library; these are the handful of
// symbols the poller needs, declared by hand because the container vendors
// no `libc` crate.

#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

const EINTR: i32 = 4;

const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use super::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`; packed on x86-64 (the one ABI
    /// where the kernel chose no padding).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

/// `Duration` → the millisecond argument `poll`/`epoll_wait` take. Rounds
/// up so a 100 µs timeout does not busy-spin at 0 ms; `None` blocks.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(c_int::MAX as u128) as c_int
        }
    }
}

// --- epoll backend ---------------------------------------------------------

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    buf: Vec<epoll_sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: u8) -> u32 {
        let mut m = epoll_sys::EPOLLRDHUP;
        if interest & READABLE != 0 {
            m |= epoll_sys::EPOLLIN;
        }
        if interest & WRITABLE != 0 {
            m |= epoll_sys::EPOLLOUT;
        }
        m
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, token: usize, interest: u8) -> io::Result<()> {
        let mut ev = epoll_sys::EpollEvent {
            events: Self::mask(interest),
            data: token as u64,
        };
        let rc = unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        let n = unsafe {
            epoll_sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.raw_os_error() == Some(EINTR) {
                return Ok(());
            }
            return Err(e);
        }
        for i in 0..n as usize {
            let ev = self.buf[i];
            let bits = ev.events;
            let hangup =
                bits & (epoll_sys::EPOLLHUP | epoll_sys::EPOLLERR | epoll_sys::EPOLLRDHUP) != 0;
            out.push(PollEvent {
                token: ev.data as usize,
                readable: bits & epoll_sys::EPOLLIN != 0 || hangup,
                writable: bits & epoll_sys::EPOLLOUT != 0,
                hangup,
            });
        }
        // A full buffer means more events may be pending; grow so the next
        // wait drains them in one call.
        if n as usize == self.buf.len() {
            let len = self.buf.len() * 2;
            self.buf
                .resize(len, epoll_sys::EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

// --- poll(2) backend -------------------------------------------------------

struct Portable {
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl Portable {
    fn new() -> Portable {
        Portable {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn mask(interest: u8) -> c_short {
        let mut m = 0;
        if interest & READABLE != 0 {
            m |= POLLIN;
        }
        if interest & WRITABLE != 0 {
            m |= POLLOUT;
        }
        m
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: u8) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.fds.push(PollFd {
            fd,
            events: Self::mask(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: u8) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.fds[i].events = Self::mask(interest);
                self.tokens[i] = token;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        let n = unsafe {
            poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as c_ulong,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.raw_os_error() == Some(EINTR) {
                return Ok(());
            }
            return Err(e);
        }
        if n == 0 {
            return Ok(());
        }
        for (i, p) in self.fds.iter_mut().enumerate() {
            let bits = p.revents;
            p.revents = 0;
            if bits == 0 {
                continue;
            }
            let hangup = bits & (POLLHUP | POLLERR | POLLNVAL) != 0;
            out.push(PollEvent {
                token: self.tokens[i],
                readable: bits & POLLIN != 0 || hangup,
                writable: bits & POLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }
}

// --- the unified poller ----------------------------------------------------

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Portable(Portable),
}

/// A level-triggered readiness poller over raw fds and `usize` tokens.
///
/// The poller never owns the fds it watches — callers keep their
/// `TcpListener`/`TcpStream`/pipe handles alive and deregister before
/// closing. Registering the same fd twice is an error; use
/// [`Poller::reregister`] to change interest.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// The platform's best backend: epoll on Linux (falling back to
    /// `poll(2)` if the kernel refuses), `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if let Ok(ep) = Epoll::new() {
                return Ok(Poller {
                    backend: Backend::Epoll(ep),
                });
            }
        }
        Self::portable()
    }

    /// The portable `poll(2)` backend, explicitly — O(watched) per wait,
    /// but POSIX-universal. Exists so tests exercise both code paths on
    /// one machine.
    pub fn portable() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Portable(Portable::new()),
        })
    }

    /// Which backend this poller runs on (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Portable(_) => "poll",
        }
    }

    /// Starts watching `fd` under `token` for `interest` bits.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: u8) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Portable(p) => p.register(fd, token, interest),
        }
    }

    /// Changes the interest bits (and token) of an already-watched `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: u8) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Portable(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Call before closing the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_DEL, fd, 0, 0),
            Backend::Portable(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one watched fd is ready or `timeout` elapses
    /// (`None` blocks indefinitely), appending readiness to `out`. `out` is
    /// cleared first; an interrupted wait (EINTR) returns empty, not an
    /// error.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(out, timeout),
            Backend::Portable(p) => p.wait(out, timeout),
        }
    }
}

// --- the cross-thread doorbell ---------------------------------------------

#[derive(Debug)]
struct WakerFds {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for WakerFds {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// A nonblocking self-pipe that knocks a [`Poller`] out of its wait from
/// another thread. Register [`Waker::read_fd`] with [`READABLE`] interest;
/// any clone's [`Waker::wake`] then makes the poller return, and the loop
/// calls [`Waker::drain`] to reset it. Wakes coalesce: the pipe holds at
/// most a buffer's worth of doorbell bytes and `wake` ignores a full pipe,
/// so a burst of wakes costs one wakeup.
#[derive(Debug, Clone)]
pub struct Waker {
    inner: Arc<WakerFds>,
}

impl Waker {
    /// A fresh doorbell (one pipe, both ends nonblocking).
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                let e = io::Error::last_os_error();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(e);
            }
        }
        Ok(Waker {
            inner: Arc::new(WakerFds {
                read_fd: fds[0],
                write_fd: fds[1],
            }),
        })
    }

    /// The end to register in the poller ([`READABLE`]).
    pub fn read_fd(&self) -> RawFd {
        self.inner.read_fd
    }

    /// Rings the doorbell. Never blocks; a full pipe (doorbell already
    /// ringing) is success.
    pub fn wake(&self) {
        let byte = [1u8];
        unsafe {
            write(self.inner.write_fd, byte.as_ptr() as *const c_void, 1);
        }
    }

    /// Clears pending doorbell bytes after a wakeup.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.inner.read_fd, buf.as_mut_ptr() as *mut c_void, 64) };
            if n <= 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pollers() -> Vec<Poller> {
        vec![Poller::new().unwrap(), Poller::portable().unwrap()]
    }

    #[test]
    fn waker_wakes_and_coalesces_on_both_backends() {
        for mut poller in pollers() {
            let waker = Waker::new().unwrap();
            poller.register(waker.read_fd(), 7, READABLE).unwrap();
            let mut events = Vec::new();

            // No wake: the wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());

            // A burst of wakes coalesces into (at least) one readable event.
            for _ in 0..100 {
                waker.wake();
            }
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: {events:?}",
                poller.backend_name()
            );
            waker.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: drained doorbell must not re-fire (level-triggered)",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn waker_crosses_threads() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.read_fd(), 1, READABLE).unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        handle.join().unwrap();
        assert!(!events.is_empty());
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn socket_readability_and_writability() {
        for mut poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            // A fresh connected socket with an empty send buffer: writable,
            // not readable.
            poller
                .register(server.as_raw_fd(), 42, READABLE | WRITABLE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == 42).expect("an event");
            assert!(ev.writable && !ev.readable, "{}", poller.backend_name());

            // Bytes from the peer flip it readable; interest narrowed to
            // READABLE stops reporting writable.
            client.write_all(b"ping").unwrap();
            poller.reregister(server.as_raw_fd(), 42, READABLE).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == 42).expect("an event");
            assert!(ev.readable && !ev.writable, "{}", poller.backend_name());

            // Peer close: readable (EOF) and flagged as hangup by at least
            // one of the condition bits once the read side drains.
            drop(client);
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.readable),
                "{}",
                poller.backend_name()
            );
            poller.deregister(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
    }
}
