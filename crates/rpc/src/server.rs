//! The threaded TCP front-end that owns a [`Fleet`].
//!
//! ```text
//!  accept thread ──spawns──▶ per-connection reader threads
//!                                   │  decode Request, attach reply channel
//!                                   ▼
//!                        bounded command inbox (mpsc)
//!                                   │  full ⇒ typed Saturated backpressure
//!                                   ▼
//!  service thread: drain commands ▸ idle-tick the fleet ▸ repeat
//! ```
//!
//! Exactly one thread (the service thread) touches the `Fleet`, so the
//! simulation needs no locking and stays deterministic: commands apply in
//! arrival order, and between commands the fleet advances through
//! [`Fleet::tick`] — the same event order [`Fleet::run`] uses, which
//! preserves chaos-event, checkpoint, and report semantics. Backpressure is
//! typed end to end: a full admission queue (or a full command inbox)
//! answers with an [`ErrorKind::Saturated`] frame whose `retry_after_secs`
//! hint clients cap their backoff at.
//!
//! [`DrainPolicy::OnShutdown`] holds all queued work until the `Shutdown`
//! request and then drains through [`Fleet::run`] — so a job mix submitted
//! over the wire produces a [`FleetReport`] byte-identical to the same mix
//! pushed through the in-process `Fleet` API. [`DrainPolicy::Eager`] is the
//! live-service mode: the fleet executes between requests, and status
//! queries observe jobs mid-flight.

use crate::protocol::{
    decode, encode, read_frame, write_frame, ErrorFrame, ErrorKind, FrameError, Request, Response,
    SnapshotInfo, SubmitSpec,
};
use nnrt_graph::DataflowGraph;
use nnrt_obs::{Clock, EventKind, Obs};
use nnrt_serve::{AdmitError, Fleet, FleetConfig, JobId, JobSpec};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Retry hint carried by inbox-full rejections, seconds. The service loop
/// drains the inbox every iteration, so this only needs to cover one
/// scheduling quantum — but it must be positive, like every `Saturated`
/// hint.
pub const INBOX_RETRY_SECS: f64 = 0.05;

/// How long a connection thread waits for the service loop to answer one
/// command before giving up on the server.
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Poll interval of the (non-blocking) accept loop and the idle service
/// loop, wall-clock.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Default cap on concurrently served connections; accepts beyond it bounce
/// with a typed [`ErrorKind::Saturated`] frame instead of pinning another
/// reader thread.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Default per-connection idle read timeout: a client that holds a
/// connection open without sending a complete frame for this long is
/// disconnected, freeing its reader thread.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Retry hint carried by connection-cap rejections, seconds.
pub const CONNECTION_RETRY_SECS: f64 = 0.5;

/// When the fleet executes queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainPolicy {
    /// Live service: the fleet ticks whenever the command inbox is idle, so
    /// jobs run (and complete, freeing queue capacity) between requests.
    #[default]
    Eager,
    /// Batch window: submissions only queue; the whole mix drains through
    /// [`Fleet::run`] when `Shutdown` arrives. The final report is
    /// byte-identical to submitting the same mix through the in-process
    /// `Fleet` API — the determinism contract the loopback tests pin.
    OnShutdown,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet configuration (nodes, queue capacity, seed, …).
    pub fleet: FleetConfig,
    /// When queued work executes.
    pub drain: DrainPolicy,
    /// Command-inbox depth; requests beyond it bounce with `Saturated`.
    pub inbox_capacity: usize,
    /// Where the graceful shutdown writes the profile-store snapshot
    /// (`None` skips persistence).
    pub snapshot_path: Option<PathBuf>,
    /// Cap on concurrently served connections; accepts beyond it answer one
    /// `Saturated` error frame and close.
    pub max_connections: usize,
    /// Per-connection idle read timeout: no complete frame within this
    /// window closes the connection.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            fleet: FleetConfig::default(),
            drain: DrainPolicy::Eager,
            inbox_capacity: 64,
            snapshot_path: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        }
    }
}

/// One decoded request plus the channel its response goes back on.
struct Command {
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// The networked fleet service: a TCP listener, per-connection reader
/// threads, and the single service thread that owns the [`Fleet`].
pub struct FleetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
    service_handle: JoinHandle<()>,
    final_report: Arc<Mutex<Option<String>>>,
}

impl FleetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving a
    /// fresh fleet built from `config.fleet`.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<FleetServer> {
        let fleet = Fleet::new(config.fleet.clone());
        Self::bind_with_fleet(addr, fleet, config)
    }

    /// Binds `addr` and serves an existing fleet — the warm-restart path: a
    /// fleet whose store was restored from a snapshot (or one with
    /// heterogeneous cost models) goes straight behind the socket.
    pub fn bind_with_fleet(
        addr: impl ToSocketAddrs,
        fleet: Fleet,
        config: ServerConfig,
    ) -> io::Result<FleetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let final_report = Arc::new(Mutex::new(None));
        let (inbox, commands) = mpsc::sync_channel(config.inbox_capacity.max(1));
        // The request-accounting handle shared with the accept loop and the
        // per-connection reader threads: rejections that never reach the
        // service thread (connection cap, full inbox) still count.
        let obs = fleet.obs();
        let limits = ConnectionLimits {
            max_connections: config.max_connections.max(1),
            idle_timeout: config.idle_timeout,
            live: Arc::new(AtomicUsize::new(0)),
            obs: Arc::clone(&obs),
        };

        let service_handle = {
            let stop = Arc::clone(&stop);
            let final_report = Arc::clone(&final_report);
            thread::spawn(move || {
                ServiceLoop {
                    fleet,
                    config,
                    commands,
                    stop,
                    final_report,
                    graphs: HashMap::new(),
                    epoch: Instant::now(),
                }
                .run()
            })
        };

        let accept_handle = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, inbox, stop, limits))
        };

        Ok(FleetServer {
            addr,
            stop,
            accept_handle,
            service_handle,
            final_report,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `Shutdown` request has stopped the server.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until a `Shutdown` request stops the server, then returns the
    /// final [`nnrt_serve::FleetReport`] JSON the shutdown flushed (`None`
    /// only if the service thread died without one).
    pub fn join(self) -> Option<String> {
        let _ = self.service_handle.join();
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_handle.join();
        self.final_report.lock().expect("report slot").take()
    }
}

/// Connection-admission policy shared by the accept loop and its reader
/// threads.
#[derive(Clone)]
struct ConnectionLimits {
    max_connections: usize,
    idle_timeout: Duration,
    live: Arc<AtomicUsize>,
    obs: Arc<Obs>,
}

/// Decrements the live-connection count when a reader thread exits, however
/// it exits.
struct ConnectionGuard(Arc<AtomicUsize>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: TcpListener,
    inbox: SyncSender<Command>,
    stop: Arc<AtomicBool>,
    limits: ConnectionLimits,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                // Claim a connection slot before spawning; over the cap the
                // client gets one typed Saturated frame and a close, and no
                // reader thread is pinned.
                let prior = limits.live.fetch_add(1, Ordering::SeqCst);
                if prior >= limits.max_connections {
                    limits.live.fetch_sub(1, Ordering::SeqCst);
                    limits.obs.counter_add(
                        Clock::Wall,
                        "nnrt_rpc_connections_rejected_total",
                        &[],
                        1,
                    );
                    let reject = Response::Error(ErrorFrame {
                        kind: ErrorKind::Saturated,
                        message: format!(
                            "server is at its connection cap ({})",
                            limits.max_connections
                        ),
                        retry_after_secs: Some(CONNECTION_RETRY_SECS),
                    });
                    thread::spawn(move || {
                        let _ = write_frame(&mut stream, &encode(&reject));
                    });
                    continue;
                }
                let guard = ConnectionGuard(Arc::clone(&limits.live));
                let inbox = inbox.clone();
                let idle_timeout = limits.idle_timeout;
                let obs = Arc::clone(&limits.obs);
                thread::spawn(move || {
                    let _guard = guard;
                    serve_connection(stream, inbox, idle_timeout, obs)
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => break,
        }
    }
}

/// Reads frames off one connection until EOF, dispatching each request
/// through the bounded inbox and writing the response frame back. A client
/// that stays silent past `idle_timeout` (no complete frame) is dropped —
/// the read times out with an I/O error, which closes the stream below.
fn serve_connection(
    mut stream: TcpStream,
    inbox: SyncSender<Command>,
    idle_timeout: Duration,
    obs: Arc<Obs>,
) {
    if !idle_timeout.is_zero() {
        let _ = stream.set_read_timeout(Some(idle_timeout));
    }
    loop {
        let response = match read_frame(&mut stream) {
            Ok(payload) => match decode::<Request>(&payload) {
                Ok(request) => {
                    let is_bye = matches!(request, Request::Shutdown);
                    let response = dispatch(request, &inbox, &obs);
                    if write_frame(&mut stream, &encode(&response)).is_err() || is_bye {
                        return;
                    }
                    continue;
                }
                Err(e) => Response::Error(ErrorFrame {
                    kind: ErrorKind::BadRequest,
                    message: e.to_string(),
                    retry_after_secs: None,
                }),
            },
            // EOF, reset, or a mid-frame error: the stream is unusable.
            Err(FrameError::Io(_)) => return,
            Err(e @ FrameError::Version(_)) => Response::Error(ErrorFrame {
                kind: ErrorKind::VersionMismatch,
                message: e.to_string(),
                retry_after_secs: None,
            }),
            Err(e) => Response::Error(ErrorFrame {
                kind: ErrorKind::BadRequest,
                message: e.to_string(),
                retry_after_secs: None,
            }),
        };
        // Error paths: answer, then close — the stream may be desynced.
        let _ = write_frame(&mut stream, &encode(&response));
        return;
    }
}

/// Queues `request` on the bounded inbox and waits for the service loop's
/// answer. A full inbox is backpressure, typed exactly like a full
/// admission queue.
fn dispatch(request: Request, inbox: &SyncSender<Command>, obs: &Obs) -> Response {
    let kind = request.kind();
    let (reply, answer) = mpsc::channel();
    match inbox.try_send(Command { request, reply }) {
        Ok(()) => match answer.recv_timeout(REPLY_TIMEOUT) {
            Ok(response) => response,
            Err(_) => Response::Error(ErrorFrame {
                kind: ErrorKind::ShuttingDown,
                message: "service loop stopped before answering".to_string(),
                retry_after_secs: None,
            }),
        },
        Err(TrySendError::Full(_)) => {
            // The inbox-full rejection never reaches the service loop, so it
            // is accounted here: same series, `outcome="saturated"`.
            obs.counter_add(
                Clock::Wall,
                "nnrt_rpc_requests_total",
                &[("kind", kind), ("outcome", "saturated")],
                1,
            );
            Response::Error(ErrorFrame {
                kind: ErrorKind::Saturated,
                message: "server command inbox is full".to_string(),
                retry_after_secs: Some(INBOX_RETRY_SECS),
            })
        }
        Err(TrySendError::Disconnected(_)) => Response::Error(ErrorFrame {
            kind: ErrorKind::ShuttingDown,
            message: "server is shutting down".to_string(),
            retry_after_secs: None,
        }),
    }
}

/// The single thread that owns the fleet.
struct ServiceLoop {
    fleet: Fleet,
    config: ServerConfig,
    commands: Receiver<Command>,
    stop: Arc<AtomicBool>,
    final_report: Arc<Mutex<Option<String>>>,
    /// `(model, batch)` → built graph, so repeated submissions of one model
    /// family do not rebuild multi-thousand-op graphs per request.
    graphs: HashMap<(String, u64), DataflowGraph>,
    /// Wall-clock origin for RPC event timestamps.
    epoch: Instant,
}

impl ServiceLoop {
    fn run(mut self) {
        loop {
            // Commands take priority over fleet progress.
            loop {
                match self.commands.try_recv() {
                    Ok(cmd) => {
                        if !self.handle(cmd) {
                            return;
                        }
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => return,
                }
            }
            let progressed = match self.config.drain {
                DrainPolicy::Eager => self.fleet.tick(),
                DrainPolicy::OnShutdown => false,
            };
            if !progressed {
                // Idle (or holding): sleep on the inbox instead of spinning.
                match self.commands.recv_timeout(POLL_INTERVAL) {
                    Ok(cmd) => {
                        if !self.handle(cmd) {
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    }

    /// Applies one command; `false` stops the service loop.
    fn handle(&mut self, cmd: Command) -> bool {
        let started = Instant::now();
        let kind = cmd.request.kind();
        let response = match cmd.request {
            Request::Submit(spec) => self.submit(spec),
            Request::Status { job_id } => match self.fleet.job_status(JobId(job_id)) {
                Some(status) => Response::Job(status),
                None => Response::Error(ErrorFrame {
                    kind: ErrorKind::UnknownJob,
                    message: format!("job {job_id} was never admitted"),
                    retry_after_secs: None,
                }),
            },
            Request::ListJobs => Response::Jobs(self.fleet.list_jobs()),
            Request::Snapshot => {
                let store = self.fleet.store();
                Response::Snapshot(SnapshotInfo::new(
                    store.len(),
                    store.stats(),
                    store.snapshot(),
                ))
            }
            Request::Metrics => {
                // Refresh the point-in-time gauges so a live scrape sees the
                // fleet as it stands, then expose both clock domains.
                self.fleet.refresh_obs_gauges();
                Response::Metrics {
                    text: self.fleet.obs().expose(None),
                }
            }
            Request::Events => Response::Events(self.fleet.obs().events_snapshot(None)),
            Request::Shutdown => {
                // Drain every queued, resident, and evicted job through the
                // same code path the in-process API uses, then flush.
                let report = self.fleet.run().to_json();
                if let Some(path) = &self.config.snapshot_path {
                    let snapshot = self.fleet.store().snapshot();
                    if let Err(e) = nnrt_serve::write_atomic(path, snapshot.as_bytes()) {
                        eprintln!("nnrt-rpc: snapshot write to {} failed: {e}", path.display());
                    }
                }
                *self.final_report.lock().expect("report slot") = Some(report.clone());
                self.stop.store(true, Ordering::SeqCst);
                let response = Response::Bye { report };
                self.observe_rpc(kind, started, &response);
                let _ = cmd.reply.send(response);
                return false;
            }
        };
        self.observe_rpc(kind, started, &response);
        let _ = cmd.reply.send(response);
        true
    }

    /// Accounts one handled request in the wall domain: a per-kind count
    /// split by outcome, a per-kind service-latency histogram, and a
    /// structured `RpcRequest` event.
    fn observe_rpc(&self, kind: &'static str, started: Instant, response: &Response) {
        let obs = self.fleet.obs();
        if !obs.enabled() {
            return;
        }
        let outcome = match response {
            Response::Error(frame) if frame.kind == ErrorKind::Saturated => "saturated",
            Response::Error(_) => "error",
            _ => "ok",
        };
        obs.counter_add(
            Clock::Wall,
            "nnrt_rpc_requests_total",
            &[("kind", kind), ("outcome", outcome)],
            1,
        );
        obs.observe(
            Clock::Wall,
            "nnrt_rpc_latency_seconds",
            &[("kind", kind)],
            started.elapsed().as_secs_f64(),
        );
        obs.event(
            Clock::Wall,
            EventKind::RpcRequest,
            self.epoch.elapsed().as_secs_f64(),
            None,
            None,
            format!("{kind}: {outcome}"),
        );
    }

    /// Resolves the model, names the job, and admits it.
    fn submit(&mut self, spec: SubmitSpec) -> Response {
        let graph_key = (spec.model.clone(), spec.batch);
        let graph = match self.graphs.get(&graph_key) {
            Some(g) => g.clone(),
            None => {
                let batch = (spec.batch > 0).then_some(spec.batch as usize);
                match nnrt_models::by_name(&spec.model, batch) {
                    Some(model) => {
                        self.graphs.insert(graph_key, model.graph.clone());
                        model.graph
                    }
                    None => {
                        return Response::Error(ErrorFrame {
                            kind: ErrorKind::UnknownModel,
                            message: format!("unknown model `{}`", spec.model),
                            retry_after_secs: None,
                        })
                    }
                }
            }
        };
        let name = if spec.name.is_empty() {
            format!("{}-{}", spec.model, self.fleet.next_job_id())
        } else {
            spec.name
        };
        let job = JobSpec {
            name,
            model: spec.model,
            graph,
            steps: spec.steps,
            priority: spec.priority,
            weight: spec.weight,
        };
        match self.fleet.submit(job) {
            Ok(id) => Response::Submitted { job_id: id.0 },
            Err(
                ref e @ AdmitError::Saturated {
                    retry_after_secs, ..
                },
            ) => Response::Error(ErrorFrame {
                kind: ErrorKind::Saturated,
                message: e.to_string(),
                retry_after_secs: Some(retry_after_secs),
            }),
            Err(e @ AdmitError::EmptyJob { .. }) => Response::Error(ErrorFrame {
                kind: ErrorKind::EmptyJob,
                message: e.to_string(),
                retry_after_secs: None,
            }),
        }
    }
}
