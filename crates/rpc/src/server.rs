//! The event-loop TCP front-end that owns a [`Fleet`].
//!
//! ```text
//!  event-loop thread (one, owns every socket)
//!  ┌───────────────────────────────────────────────────────────────┐
//!  │ poller: epoll / poll(2)  ◀── waker pipe ◀──────────────┐      │
//!  │   ├─ listener readable ─▶ accept → register conn       │      │
//!  │   └─ conn readable/writable ─▶ per-connection machine  │      │
//!  │        read-accumulate ▸ decode frames ▸ claim slots   │      │
//!  │        ▸ flush answered slots in request order         │      │
//!  └───────────┬───────────────────────────────▲────────────┘      │
//!              │ bounded command inbox          │ reply channel ───┘
//!              │ (full ⇒ typed Saturated)       │ (conn, seq, response)
//!              ▼                                │
//!  service thread: drain commands ▸ idle-tick the fleet ▸ repeat
//! ```
//!
//! One thread owns every socket (the event loop) and one thread owns the
//! `Fleet` (the service loop) — no locks on either side. The event loop
//! multiplexes thousands of connections through a readiness poller
//! ([`crate::poll`]): each connection is a state machine
//! ([`crate::conn`]) that accumulates bytes, decodes length-prefixed
//! frames, claims an ordered response slot per request, and write-drains
//! its outbox when the socket accepts bytes. Requests cross to the service
//! thread through the same bounded command inbox the threaded server used;
//! replies come back tagged `(connection, seq)` and a self-pipe waker
//! knocks the poller out of its wait.
//!
//! Connections are *pipelined*: a client may send many frames without
//! awaiting responses, and responses flush strictly in request order.
//! Backpressure is typed and layered: a full admission queue or a full
//! command inbox answers [`ErrorKind::Saturated`] (with a
//! `retry_after_secs` hint), a connection over [`ServerConfig::max_connections`]
//! gets one `Saturated` frame and a close, and a connection whose outbox
//! backs up past the high-water mark simply stops being read until it
//! drains — TCP flow control carries the stall back to the client.
//!
//! The service loop is unchanged from the threaded server: commands apply
//! in arrival order, and between commands the fleet advances through
//! [`Fleet::tick`] — the same event order [`Fleet::run`] uses, which
//! preserves chaos-event, checkpoint, and report semantics.
//! [`DrainPolicy::OnShutdown`] holds all queued work until the `Shutdown`
//! request and then drains through [`Fleet::run`] — so a job mix submitted
//! over the wire produces a [`FleetReport`] byte-identical to the same mix
//! pushed through the in-process `Fleet` API. [`DrainPolicy::Eager`] is the
//! live-service mode: the fleet executes between requests, and status
//! queries observe jobs mid-flight.
//!
//! [`FleetReport`]: nnrt_serve::FleetReport

use crate::conn::Connection;
use crate::poll::{PollEvent, Poller, Waker, READABLE};
use crate::protocol::{ErrorFrame, ErrorKind, Request, Response, SnapshotInfo, SubmitSpec};
use nnrt_graph::DataflowGraph;
use nnrt_obs::{Clock, EventKind, Obs};
use nnrt_serve::{AdmitError, Fleet, FleetConfig, JobId, JobSpec};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Retry hint carried by inbox-full rejections, seconds. The service loop
/// drains the inbox every iteration, so this only needs to cover one
/// scheduling quantum — but it must be positive, like every `Saturated`
/// hint.
pub const INBOX_RETRY_SECS: f64 = 0.05;

/// Poll interval of the idle service loop, wall-clock.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Longest the event loop sleeps in the poller before re-checking the stop
/// flag and housekeeping deadlines, even with no socket activity.
const EVENT_WAIT_CAP: Duration = Duration::from_millis(500);

/// Cadence of the housekeeping pass (idle sweep + gauge refresh) under
/// constant socket activity, so a hot loop doesn't walk every connection on
/// every wakeup.
const HOUSEKEEPING_INTERVAL: Duration = Duration::from_millis(100);

/// How long the shutdown drain keeps flushing outstanding responses (the
/// `Bye` frame above all) before dropping whatever connections remain.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(3);

/// Default cap on concurrently served connections; accepts beyond it bounce
/// with a typed [`ErrorKind::Saturated`] frame. The event loop spends a few
/// hundred bytes per idle connection rather than a thread, so the default
/// is sized for thousands of clients.
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// Default per-connection idle read timeout: a client that holds a
/// connection open without speaking for this long (and has no response in
/// flight) is disconnected, freeing its slot.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Default cap on in-flight pipelined requests per connection; frames
/// beyond it stay in the kernel's receive queue until a slot frees.
pub const DEFAULT_PIPELINE_DEPTH: usize = 16;

/// Retry hint carried by connection-cap rejections, seconds.
pub const CONNECTION_RETRY_SECS: f64 = 0.5;

/// When the fleet executes queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainPolicy {
    /// Live service: the fleet ticks whenever the command inbox is idle, so
    /// jobs run (and complete, freeing queue capacity) between requests.
    #[default]
    Eager,
    /// Batch window: submissions only queue; the whole mix drains through
    /// [`Fleet::run`] when `Shutdown` arrives. The final report is
    /// byte-identical to submitting the same mix through the in-process
    /// `Fleet` API — the determinism contract the loopback tests pin.
    OnShutdown,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet configuration (nodes, queue capacity, seed, …).
    pub fleet: FleetConfig,
    /// When queued work executes.
    pub drain: DrainPolicy,
    /// Command-inbox depth; requests beyond it bounce with `Saturated`.
    pub inbox_capacity: usize,
    /// Where the graceful shutdown writes the profile-store snapshot
    /// (`None` skips persistence).
    pub snapshot_path: Option<PathBuf>,
    /// Cap on concurrently served connections; accepts beyond it answer one
    /// `Saturated` error frame and close.
    pub max_connections: usize,
    /// Per-connection idle read timeout: a connection with no socket
    /// activity and no in-flight request for this long is closed
    /// (`Duration::ZERO` disables the sweep).
    pub idle_timeout: Duration,
    /// Cap on in-flight pipelined requests per connection: further frames
    /// wait in kernel/userspace buffers until a response slot frees.
    pub pipeline_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            fleet: FleetConfig::default(),
            drain: DrainPolicy::Eager,
            inbox_capacity: 64,
            snapshot_path: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
        }
    }
}

/// One decoded request tagged with the connection and pipeline slot its
/// response must route back to.
struct Command {
    conn: u64,
    seq: u64,
    request: Request,
}

/// The service thread's answer to one command.
struct Reply {
    conn: u64,
    seq: u64,
    response: Response,
}

/// The networked fleet service: one event-loop thread multiplexing every
/// socket through a readiness poller, and one service thread that owns the
/// [`Fleet`].
pub struct FleetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    event_handle: JoinHandle<()>,
    service_handle: JoinHandle<()>,
    final_report: Arc<Mutex<Option<String>>>,
}

impl FleetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving a
    /// fresh fleet built from `config.fleet`.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<FleetServer> {
        let fleet = Fleet::new(config.fleet.clone());
        Self::bind_with_fleet(addr, fleet, config)
    }

    /// Binds `addr` and serves an existing fleet — the warm-restart path: a
    /// fleet whose store was restored from a snapshot (or one with
    /// heterogeneous cost models) goes straight behind the socket.
    pub fn bind_with_fleet(
        addr: impl ToSocketAddrs,
        fleet: Fleet,
        config: ServerConfig,
    ) -> io::Result<FleetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let final_report = Arc::new(Mutex::new(None));
        let (inbox, commands) = mpsc::sync_channel(config.inbox_capacity.max(1));
        let (reply_tx, replies) = mpsc::channel();
        let waker = Waker::new()?;
        let obs = fleet.obs();

        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, READABLE)?;
        poller.register(waker.read_fd(), TOKEN_WAKER, READABLE)?;

        let service_handle = {
            let stop = Arc::clone(&stop);
            let final_report = Arc::clone(&final_report);
            let waker = waker.clone();
            let config = config.clone();
            thread::spawn(move || {
                ServiceLoop {
                    fleet,
                    config,
                    commands,
                    replies: reply_tx,
                    waker,
                    stop,
                    final_report,
                    graphs: HashMap::new(),
                    epoch: Instant::now(),
                }
                .run()
            })
        };

        let event_handle = {
            let stop = Arc::clone(&stop);
            let waker = waker.clone();
            thread::spawn(move || {
                EventLoop {
                    listener,
                    poller,
                    waker,
                    inbox,
                    replies,
                    stop,
                    obs,
                    max_connections: config.max_connections.max(1),
                    idle_timeout: config.idle_timeout,
                    pipeline_depth: config.pipeline_depth.max(1),
                    conns: Vec::new(),
                    free: Vec::new(),
                    by_id: HashMap::new(),
                    next_conn_id: 0,
                    counted_live: 0,
                    last_conn_gauge: -1.0,
                    last_outbox_gauge: -1.0,
                }
                .run()
            })
        };

        Ok(FleetServer {
            addr,
            stop,
            waker,
            event_handle,
            service_handle,
            final_report,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `Shutdown` request has stopped the server.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until a `Shutdown` request stops the server, then returns the
    /// final [`nnrt_serve::FleetReport`] JSON the shutdown flushed (`None`
    /// only if the service thread died without one).
    pub fn join(self) -> Option<String> {
        let _ = self.service_handle.join();
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        let _ = self.event_handle.join();
        self.final_report.lock().expect("report slot").take()
    }
}

/// Poller token of the TCP listener.
const TOKEN_LISTENER: usize = 0;
/// Poller token of the cross-thread waker pipe.
const TOKEN_WAKER: usize = 1;
/// Connection slab slot `i` registers under token `i + CONN_TOKEN_BASE`.
const CONN_TOKEN_BASE: usize = 2;

/// The single thread that owns every socket.
struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    inbox: SyncSender<Command>,
    replies: Receiver<Reply>,
    stop: Arc<AtomicBool>,
    obs: Arc<Obs>,
    max_connections: usize,
    idle_timeout: Duration,
    pipeline_depth: usize,
    /// Connection slab: poller tokens index it directly (offset by
    /// [`CONN_TOKEN_BASE`]); freed slots are reused via `free`.
    conns: Vec<Option<Connection>>,
    free: Vec<usize>,
    /// Connection id → slab slot. Ids are never reused, so a reply for a
    /// connection that died routes nowhere instead of to a slot's new
    /// tenant.
    by_id: HashMap<u64, usize>,
    next_conn_id: u64,
    /// Connections currently holding a `max_connections` slot (cap-bounced
    /// ones don't count).
    counted_live: usize,
    last_conn_gauge: f64,
    last_outbox_gauge: f64,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut dirty: Vec<usize> = Vec::new();
        let mut last_housekeeping = Instant::now();
        loop {
            if self.poller.wait(&mut events, Some(EVENT_WAIT_CAP)).is_err() {
                break;
            }
            dirty.clear();
            let mut accept_ready = false;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        let slot = token - CONN_TOKEN_BASE;
                        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                            if ev.readable {
                                conn.on_readable();
                            }
                            dirty.push(slot);
                        }
                    }
                }
            }
            if accept_ready {
                self.accept_all(&mut dirty);
            }
            let service_dead = self.drain_replies(&mut dirty);
            dirty.sort_unstable();
            dirty.dedup();
            for &slot in dirty.iter() {
                self.pump(slot);
            }
            if last_housekeeping.elapsed() >= HOUSEKEEPING_INTERVAL {
                last_housekeeping = Instant::now();
                self.sweep_idle();
                self.refresh_gauges();
            }
            if service_dead || self.stop.load(Ordering::SeqCst) {
                self.shutdown_drain();
                return;
            }
        }
    }

    /// Accepts every pending connection; over the cap, a connection is
    /// created only to carry one typed `Saturated` frame and close.
    fn accept_all(&mut self, dirty: &mut Vec<usize>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    let conn = if self.counted_live >= self.max_connections {
                        self.obs.counter_add(
                            Clock::Wall,
                            "nnrt_rpc_connections_rejected_total",
                            &[],
                            1,
                        );
                        Connection::reject(
                            id,
                            stream,
                            Response::Error(ErrorFrame {
                                kind: ErrorKind::Saturated,
                                message: format!(
                                    "server is at its connection cap ({})",
                                    self.max_connections
                                ),
                                retry_after_secs: Some(CONNECTION_RETRY_SECS),
                            }),
                        )
                    } else {
                        Connection::new(id, stream, true)
                    };
                    let Ok(mut conn) = conn else { continue };
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let interest = conn.desired_interest(self.pipeline_depth);
                    if self
                        .poller
                        .register(conn.stream.as_raw_fd(), slot + CONN_TOKEN_BASE, interest)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    conn.registered_interest = interest;
                    if conn.counted {
                        self.counted_live += 1;
                    }
                    self.by_id.insert(id, slot);
                    self.conns[slot] = Some(conn);
                    dirty.push(slot);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Routes every buffered service reply into its connection's pipeline
    /// slot. Returns `true` once the service thread is gone (its sender
    /// dropped).
    fn drain_replies(&mut self, dirty: &mut Vec<usize>) -> bool {
        loop {
            match self.replies.try_recv() {
                Ok(reply) => {
                    if let Some(slot) = self.route_reply(reply) {
                        dirty.push(slot);
                    }
                }
                Err(mpsc::TryRecvError::Empty) => return false,
                Err(mpsc::TryRecvError::Disconnected) => return true,
            }
        }
    }

    fn route_reply(&mut self, reply: Reply) -> Option<usize> {
        let &slot = self.by_id.get(&reply.conn)?;
        let conn = self.conns.get_mut(slot)?.as_mut()?;
        conn.fill(reply.seq, reply.response);
        Some(slot)
    }

    /// Advances one connection's state machine: flush what's answered,
    /// parse newly buffered frames into the inbox (answering saturation at
    /// the edge), flush again, then reconcile poller interest — or close.
    fn pump(&mut self, slot: usize) {
        let inbox = &self.inbox;
        let obs = &self.obs;
        let depth = self.pipeline_depth;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut sink = |conn_id: u64, seq: u64, request: Request| -> Option<Response> {
            let kind = request.kind();
            match inbox.try_send(Command {
                conn: conn_id,
                seq,
                request,
            }) {
                Ok(()) => None,
                Err(TrySendError::Full(_)) => {
                    // The inbox-full rejection never reaches the service
                    // loop, so it is accounted here: same series,
                    // `outcome="saturated"`.
                    obs.counter_add(
                        Clock::Wall,
                        "nnrt_rpc_requests_total",
                        &[("kind", kind), ("outcome", "saturated")],
                        1,
                    );
                    Some(Response::Error(ErrorFrame {
                        kind: ErrorKind::Saturated,
                        message: "server command inbox is full".to_string(),
                        retry_after_secs: Some(INBOX_RETRY_SECS),
                    }))
                }
                Err(TrySendError::Disconnected(_)) => Some(Response::Error(ErrorFrame {
                    kind: ErrorKind::ShuttingDown,
                    message: "server is shutting down".to_string(),
                    retry_after_secs: None,
                })),
            }
        };
        loop {
            conn.flush();
            if conn.parse_frames(depth, &mut sink) == 0 {
                break;
            }
        }
        conn.flush();
        let fd = conn.stream.as_raw_fd();
        let should_close = conn.should_close();
        let desired = conn.desired_interest(depth);
        let registered = conn.registered_interest;
        if should_close {
            self.close(slot);
        } else if desired != registered
            && self
                .poller
                .reregister(fd, slot + CONN_TOKEN_BASE, desired)
                .is_ok()
        {
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.registered_interest = desired;
            }
        }
    }

    /// Deregisters and drops one connection, freeing its slab slot (and its
    /// `max_connections` slot, if it held one).
    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.by_id.remove(&conn.id);
            if conn.counted {
                self.counted_live = self.counted_live.saturating_sub(1);
            }
            self.free.push(slot);
        }
    }

    /// Closes connections that have been silent past the idle timeout and
    /// have no request in flight (a connection waiting on a slow profile is
    /// busy, not idle).
    fn sweep_idle(&mut self) {
        if self.idle_timeout.is_zero() {
            return;
        }
        let now = Instant::now();
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                (!conn.awaiting_service()
                    && now.duration_since(conn.last_activity) >= self.idle_timeout)
                    .then_some(slot)
            })
            .collect();
        for slot in stale {
            self.close(slot);
        }
    }

    /// Publishes the wall-domain connection-count and outbox-depth gauges,
    /// touching the registry only when a value changed.
    fn refresh_gauges(&mut self) {
        if !self.obs.enabled() {
            return;
        }
        let live = self.counted_live as f64;
        if live != self.last_conn_gauge {
            self.obs
                .gauge_set(Clock::Wall, "nnrt_rpc_connections", &[], live);
            self.last_conn_gauge = live;
        }
        let outbox: usize = self
            .conns
            .iter()
            .filter_map(|c| c.as_ref().map(Connection::outbox_bytes))
            .sum();
        let outbox = outbox as f64;
        if outbox != self.last_outbox_gauge {
            self.obs
                .gauge_set(Clock::Wall, "nnrt_rpc_outbox_bytes", &[], outbox);
            self.last_outbox_gauge = outbox;
        }
    }

    /// Final drain: stop accepting, route the service thread's last replies
    /// (the `Bye` frame above all), answer everything still in flight with
    /// `ShuttingDown`, and flush for up to [`SHUTDOWN_GRACE`] before
    /// dropping the remaining sockets.
    fn shutdown_drain(&mut self) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        let deadline = Instant::now() + SHUTDOWN_GRACE;

        // The service thread drops its reply sender when its loop returns
        // (right after posting the Bye), so this terminates promptly; the
        // deadline only guards a wedged service thread.
        while Instant::now() < deadline {
            match self.replies.recv_timeout(Duration::from_millis(50)) {
                Ok(reply) => {
                    self.route_reply(reply);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        let refusal = Response::Error(ErrorFrame {
            kind: ErrorKind::ShuttingDown,
            message: "server is shutting down".to_string(),
            retry_after_secs: None,
        });
        for conn in self.conns.iter_mut().flatten() {
            conn.fill_all_unanswered(&refusal);
            conn.begin_close();
        }

        let mut events = Vec::new();
        loop {
            let open: Vec<usize> = (0..self.conns.len())
                .filter(|&s| self.conns[s].is_some())
                .collect();
            if open.is_empty() || Instant::now() >= deadline {
                break;
            }
            for slot in open {
                self.pump(slot);
            }
            if self.conns.iter().all(Option::is_none) {
                break;
            }
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(20)));
        }
    }
}

/// The single thread that owns the fleet.
struct ServiceLoop {
    fleet: Fleet,
    config: ServerConfig,
    commands: Receiver<Command>,
    replies: Sender<Reply>,
    waker: Waker,
    stop: Arc<AtomicBool>,
    final_report: Arc<Mutex<Option<String>>>,
    /// `(model, batch)` → built graph, so repeated submissions of one model
    /// family do not rebuild multi-thousand-op graphs per request.
    graphs: HashMap<(String, u64), DataflowGraph>,
    /// Wall-clock origin for RPC event timestamps.
    epoch: Instant,
}

impl ServiceLoop {
    fn run(mut self) {
        loop {
            // Commands take priority over fleet progress.
            loop {
                match self.commands.try_recv() {
                    Ok(cmd) => {
                        if !self.handle(cmd) {
                            return;
                        }
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => return,
                }
            }
            let progressed = match self.config.drain {
                DrainPolicy::Eager => self.fleet.tick(),
                DrainPolicy::OnShutdown => false,
            };
            if !progressed {
                // Idle (or holding): sleep on the inbox instead of spinning.
                match self.commands.recv_timeout(POLL_INTERVAL) {
                    Ok(cmd) => {
                        if !self.handle(cmd) {
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    }

    /// Posts one answer back to the event loop and rings its doorbell.
    fn reply(&self, conn: u64, seq: u64, response: Response) {
        let _ = self.replies.send(Reply {
            conn,
            seq,
            response,
        });
        self.waker.wake();
    }

    /// Applies one command; `false` stops the service loop.
    fn handle(&mut self, cmd: Command) -> bool {
        let started = Instant::now();
        let kind = cmd.request.kind();
        let response = match cmd.request {
            Request::Submit(spec) => self.submit(spec),
            Request::Status { job_id } => match self.fleet.job_status(JobId(job_id)) {
                Some(status) => Response::Job(status),
                None => Response::Error(ErrorFrame {
                    kind: ErrorKind::UnknownJob,
                    message: format!("job {job_id} was never admitted"),
                    retry_after_secs: None,
                }),
            },
            Request::ListJobs => Response::Jobs(self.fleet.list_jobs()),
            Request::Snapshot => {
                let store = self.fleet.store();
                Response::Snapshot(SnapshotInfo::new(
                    store.len(),
                    store.stats(),
                    store.snapshot(),
                ))
            }
            Request::Metrics => {
                // Refresh the point-in-time gauges so a live scrape sees the
                // fleet as it stands, then expose both clock domains.
                self.fleet.refresh_obs_gauges();
                Response::Metrics {
                    text: self.fleet.obs().expose(None),
                }
            }
            Request::Events => Response::Events(self.fleet.obs().events_snapshot(None)),
            Request::Shutdown => {
                // Drain every queued, resident, and evicted job through the
                // same code path the in-process API uses, then flush.
                let report = self.fleet.run().to_json();
                if let Some(path) = &self.config.snapshot_path {
                    let snapshot = self.fleet.store().snapshot();
                    if let Err(e) = nnrt_serve::write_atomic(path, snapshot.as_bytes()) {
                        eprintln!("nnrt-rpc: snapshot write to {} failed: {e}", path.display());
                    }
                }
                *self.final_report.lock().expect("report slot") = Some(report.clone());
                self.stop.store(true, Ordering::SeqCst);
                let response = Response::Bye { report };
                self.observe_rpc(kind, started, &response);
                self.reply(cmd.conn, cmd.seq, response);
                return false;
            }
        };
        self.observe_rpc(kind, started, &response);
        self.reply(cmd.conn, cmd.seq, response);
        true
    }

    /// Accounts one handled request in the wall domain: a per-kind count
    /// split by outcome, a per-kind service-latency histogram, and a
    /// structured `RpcRequest` event.
    fn observe_rpc(&self, kind: &'static str, started: Instant, response: &Response) {
        let obs = self.fleet.obs();
        if !obs.enabled() {
            return;
        }
        let outcome = match response {
            Response::Error(frame) if frame.kind == ErrorKind::Saturated => "saturated",
            Response::Error(_) => "error",
            _ => "ok",
        };
        obs.counter_add(
            Clock::Wall,
            "nnrt_rpc_requests_total",
            &[("kind", kind), ("outcome", outcome)],
            1,
        );
        obs.observe(
            Clock::Wall,
            "nnrt_rpc_latency_seconds",
            &[("kind", kind)],
            started.elapsed().as_secs_f64(),
        );
        obs.event(
            Clock::Wall,
            EventKind::RpcRequest,
            self.epoch.elapsed().as_secs_f64(),
            None,
            None,
            format!("{kind}: {outcome}"),
        );
    }

    /// Resolves the model, names the job, and admits it.
    fn submit(&mut self, spec: SubmitSpec) -> Response {
        let graph_key = (spec.model.clone(), spec.batch);
        let graph = match self.graphs.get(&graph_key) {
            Some(g) => g.clone(),
            None => {
                let batch = (spec.batch > 0).then_some(spec.batch as usize);
                match nnrt_models::by_name(&spec.model, batch) {
                    Some(model) => {
                        self.graphs.insert(graph_key, model.graph.clone());
                        model.graph
                    }
                    None => {
                        return Response::Error(ErrorFrame {
                            kind: ErrorKind::UnknownModel,
                            message: format!("unknown model `{}`", spec.model),
                            retry_after_secs: None,
                        })
                    }
                }
            }
        };
        let name = if spec.name.is_empty() {
            format!("{}-{}", spec.model, self.fleet.next_job_id())
        } else {
            spec.name
        };
        let job = JobSpec {
            name,
            model: spec.model,
            graph,
            steps: spec.steps,
            priority: spec.priority,
            weight: spec.weight,
        };
        match self.fleet.submit(job) {
            Ok(id) => Response::Submitted { job_id: id.0 },
            Err(
                ref e @ AdmitError::Saturated {
                    retry_after_secs, ..
                },
            ) => Response::Error(ErrorFrame {
                kind: ErrorKind::Saturated,
                message: e.to_string(),
                retry_after_secs: Some(retry_after_secs),
            }),
            Err(e @ AdmitError::EmptyJob { .. }) => Response::Error(ErrorFrame {
                kind: ErrorKind::EmptyJob,
                message: e.to_string(),
                retry_after_secs: None,
            }),
        }
    }
}
