//! The blocking client: connect/read timeouts and honor-the-hint retry.
//!
//! [`RpcClient`] speaks one request/response pair at a time over a single
//! connection. Submissions rejected with [`ErrorKind::Saturated`] can be
//! retried through [`RpcClient::submit_with_retry`], whose waits come from
//! a [`JitterBackoff`] — *decorrelated jitter*, not bare exponential
//! doubling, because a saturated server bounces hundreds of clients in the
//! same instant with the same `retry_after_secs` hint, and deterministic
//! backoff marches them all back in lockstep to collide again. Each wait
//! is drawn uniformly from `[base, min(3 × previous, cap)]` with a
//! per-client seed, so the herd spreads out while the expected wait still
//! grows geometrically. No wait ever exceeds the server's hint — the
//! server knows when a slot frees, so the hint is the cap, not the floor.

use crate::protocol::{
    decode, encode, read_frame, write_frame, ErrorFrame, ErrorKind, FrameError, Request, Response,
    SnapshotInfo, SubmitSpec,
};
use nnrt_serve::JobStatus;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Connection and read deadlines.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-response read deadline (submissions can trigger a cold profile
    /// on the service thread, so this is generous by default).
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(120),
        }
    }
}

/// Retry shaping for [`RpcClient::submit_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Shortest wait after a saturated rejection (the jitter draw's floor).
    pub initial_backoff: Duration,
    /// Ceiling no drawn wait ever exceeds (the server's `retry_after_secs`
    /// hint caps each wait further).
    pub max_backoff: Duration,
    /// Total submission attempts before giving up.
    pub max_attempts: u32,
    /// Seed for the jitter stream. Give each client its own seed (its
    /// index, its connection id) so a herd of bounced clients decorrelates;
    /// the same seed always draws the same waits, keeping tests
    /// deterministic.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            max_attempts: 10,
            jitter_seed: 0,
        }
    }
}

/// Decorrelated-jitter backoff (the AWS architecture blog's variant):
/// each wait is drawn uniformly from `[base, min(3 × previous, cap)]`, so
/// successive waits grow geometrically in expectation while two clients
/// with different seeds almost never wait the same amount — the property
/// that keeps a thundering herd from re-colliding after a shared
/// `Saturated` bounce.
///
/// The draw stream is a seeded splitmix64: deterministic per seed, cheap,
/// and dependency-free.
#[derive(Debug, Clone)]
pub struct JitterBackoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JitterBackoff {
    /// A backoff stream shaped by `policy`, seeded by `policy.jitter_seed`.
    pub fn new(policy: &RetryPolicy) -> Self {
        Self::with_seed(policy, policy.jitter_seed)
    }

    /// A backoff stream shaped by `policy` with an explicit seed — the
    /// load-generator path, where every connection derives its seed from
    /// its own index.
    pub fn with_seed(policy: &RetryPolicy, seed: u64) -> Self {
        let base = policy.initial_backoff;
        JitterBackoff {
            base,
            cap: policy.max_backoff.max(base),
            prev: base,
            state: seed,
        }
    }

    /// Draws the next wait: uniform in `[base, min(3 × previous, cap)]`,
    /// then capped by the server's `retry_after_secs` hint if one came with
    /// the rejection (a finite, non-negative hint is an upper bound — the
    /// server knows when a slot frees).
    pub fn next_wait(&mut self, hint_secs: Option<f64>) -> Duration {
        let upper = self.prev.saturating_mul(3).clamp(self.base, self.cap);
        let span = upper.saturating_sub(self.base);
        // 53 uniform bits → f64 in [0, 1), the standard double-precision draw.
        let unit = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let mut wait = self.base + span.mul_f64(unit);
        self.prev = wait;
        if let Some(hint) = hint_secs {
            if hint.is_finite() && hint >= 0.0 {
                wait = wait.min(Duration::from_secs_f64(hint));
            }
        }
        wait
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket could not be reached or died mid-exchange.
    Io(io::Error),
    /// The server's bytes did not decode to a response frame.
    Frame(FrameError),
    /// The server answered with a typed refusal.
    Rejected(ErrorFrame),
    /// The server answered with a well-formed response of the wrong kind.
    Unexpected(String),
    /// Every submission attempt was rejected; `last` is the final refusal.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last rejection.
        last: ErrorFrame,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected(frame) => {
                write!(f, "rejected ({:?}): {}", frame.kind, frame.message)
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::RetriesExhausted { attempts, last } => write!(
                f,
                "gave up after {attempts} attempts; last rejection ({:?}): {}",
                last.kind, last.message
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        }
    }
}

/// A blocking connection to a [`crate::FleetServer`].
pub struct RpcClient {
    stream: TcpStream,
}

impl RpcClient {
    /// Connects with the default timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Self, ClientError> {
        let mut last = io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        );
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        for a in addrs {
            match TcpStream::connect_timeout(&a, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(RpcClient { stream });
                }
                Err(e) => last = e,
            }
        }
        Err(ClientError::Io(last))
    }

    /// One request/response exchange. Typed server refusals come back as
    /// `Ok(Response::Error(..))`; the convenience wrappers below lift them
    /// into [`ClientError::Rejected`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode(request))?;
        let payload = read_frame(&mut self.stream)?;
        Ok(decode::<Response>(&payload)?)
    }

    /// Submits a job, returning its fleet-unique id.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<u64, ClientError> {
        match self.request(&Request::Submit(spec.clone()))? {
            Response::Submitted { job_id } => Ok(job_id),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submits with saturation retry: decorrelated-jitter backoff (see
    /// [`JitterBackoff`]) seeded by `policy.jitter_seed`, each wait capped
    /// by both `policy.max_backoff` and the server's `retry_after_secs`
    /// hint. Non-saturation rejections fail immediately.
    pub fn submit_with_retry(
        &mut self,
        spec: &SubmitSpec,
        policy: &RetryPolicy,
    ) -> Result<u64, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut backoff = JitterBackoff::new(policy);
        let mut last = None;
        for attempt in 0..attempts {
            match self.submit(spec) {
                Ok(id) => return Ok(id),
                Err(ClientError::Rejected(frame)) if frame.kind == ErrorKind::Saturated => {
                    let wait = backoff.next_wait(frame.retry_after_secs);
                    last = Some(frame);
                    if attempt + 1 < attempts {
                        thread::sleep(wait);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: last.expect("at least one rejection before exhaustion"),
        })
    }

    /// One job's status.
    pub fn status(&mut self, job_id: u64) -> Result<JobStatus, ClientError> {
        match self.request(&Request::Status { job_id })? {
            Response::Job(status) => Ok(status),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Every admitted job's status, sorted by id.
    pub fn list_jobs(&mut self) -> Result<Vec<JobStatus>, ClientError> {
        match self.request(&Request::ListJobs)? {
            Response::Jobs(jobs) => Ok(jobs),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The fleet's metrics exposition (Prometheus-style text, both clock
    /// domains, gauges refreshed at scrape time).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The fleet's retained structured events (sim domain first, each in
    /// sequence order).
    pub fn events(&mut self) -> Result<Vec<nnrt_obs::Event>, ClientError> {
        match self.request(&Request::Events)? {
            Response::Events(events) => Ok(events),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The profile store's counters and snapshot document.
    pub fn snapshot(&mut self) -> Result<SnapshotInfo, ClientError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshot(info) => Ok(info),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Gracefully stops the server, returning the final
    /// [`nnrt_serve::FleetReport`] JSON it flushed.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye { report } => Ok(report),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            max_attempts: 10,
            jitter_seed: 0,
        }
    }

    #[test]
    fn jitter_waits_stay_within_base_and_cap() {
        let p = policy();
        let mut backoff = JitterBackoff::with_seed(&p, 42);
        let mut prev_upper = p.initial_backoff;
        for _ in 0..64 {
            let wait = backoff.next_wait(None);
            assert!(wait >= p.initial_backoff, "{wait:?} under the base");
            assert!(wait <= p.max_backoff, "{wait:?} over the cap");
            // Decorrelated: each draw is bounded by 3× the previous draw.
            let upper = prev_upper.saturating_mul(3).min(p.max_backoff);
            assert!(wait <= upper, "{wait:?} over 3× the previous wait");
            prev_upper = wait.max(p.initial_backoff);
        }
    }

    #[test]
    fn same_seed_draws_the_same_waits_different_seeds_diverge() {
        let p = policy();
        let draws = |seed: u64| -> Vec<Duration> {
            let mut b = JitterBackoff::with_seed(&p, seed);
            (0..16).map(|_| b.next_wait(None)).collect()
        };
        assert_eq!(draws(7), draws(7), "a seed fully determines the stream");
        let a = draws(1);
        let b = draws(2);
        assert_ne!(a, b, "distinct seeds must decorrelate");
        // Lockstep is the failure mode this exists to prevent: two seeds
        // should disagree on nearly every draw, not just one.
        let disagreements = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(disagreements >= 12, "only {disagreements}/16 draws differ");
    }

    #[test]
    fn the_server_hint_caps_every_wait() {
        let p = policy();
        let mut backoff = JitterBackoff::with_seed(&p, 3);
        for _ in 0..32 {
            let wait = backoff.next_wait(Some(0.001));
            assert!(wait <= Duration::from_millis(1), "{wait:?} over the hint");
        }
        // Garbage hints (negative, infinite, NaN) are ignored, not obeyed.
        let mut backoff = JitterBackoff::with_seed(&p, 3);
        for hint in [Some(-1.0), Some(f64::INFINITY), Some(f64::NAN), None] {
            let wait = backoff.next_wait(hint);
            assert!(wait >= p.initial_backoff && wait <= p.max_backoff);
        }
    }

    #[test]
    fn waits_grow_geometrically_in_expectation() {
        // Averaged over many seeds, the k-th wait should clearly exceed the
        // first — the backoff still backs off, jitter or not.
        let p = RetryPolicy {
            max_backoff: Duration::from_secs(60),
            ..policy()
        };
        let (mut first_sum, mut fifth_sum) = (0.0f64, 0.0f64);
        for seed in 0..200 {
            let mut b = JitterBackoff::with_seed(&p, seed);
            let waits: Vec<f64> = (0..5).map(|_| b.next_wait(None).as_secs_f64()).collect();
            first_sum += waits[0];
            fifth_sum += waits[4];
        }
        assert!(
            fifth_sum > first_sum * 3.0,
            "fifth-wait mass {fifth_sum:.4}s vs first {first_sum:.4}s"
        );
    }
}
