//! The blocking client: connect/read timeouts and honor-the-hint retry.
//!
//! [`RpcClient`] speaks one request/response pair at a time over a single
//! connection. Submissions rejected with [`ErrorKind::Saturated`] can be
//! retried through [`RpcClient::submit_with_retry`], which backs off
//! exponentially but never waits longer than the server's
//! `retry_after_secs` hint — the server knows when a slot frees, so the
//! hint is the cap, not the floor.

use crate::protocol::{
    decode, encode, read_frame, write_frame, ErrorFrame, ErrorKind, FrameError, Request, Response,
    SnapshotInfo, SubmitSpec,
};
use nnrt_serve::JobStatus;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Connection and read deadlines.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-response read deadline (submissions can trigger a cold profile
    /// on the service thread, so this is generous by default).
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(120),
        }
    }
}

/// Retry shaping for [`RpcClient::submit_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First wait after a saturated rejection.
    pub initial_backoff: Duration,
    /// Ceiling the exponential backoff never exceeds (the server's
    /// `retry_after_secs` hint caps each wait further).
    pub max_backoff: Duration,
    /// Total submission attempts before giving up.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            max_attempts: 10,
        }
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket could not be reached or died mid-exchange.
    Io(io::Error),
    /// The server's bytes did not decode to a response frame.
    Frame(FrameError),
    /// The server answered with a typed refusal.
    Rejected(ErrorFrame),
    /// The server answered with a well-formed response of the wrong kind.
    Unexpected(String),
    /// Every submission attempt was rejected; `last` is the final refusal.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last rejection.
        last: ErrorFrame,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected(frame) => {
                write!(f, "rejected ({:?}): {}", frame.kind, frame.message)
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::RetriesExhausted { attempts, last } => write!(
                f,
                "gave up after {attempts} attempts; last rejection ({:?}): {}",
                last.kind, last.message
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        }
    }
}

/// A blocking connection to a [`crate::FleetServer`].
pub struct RpcClient {
    stream: TcpStream,
}

impl RpcClient {
    /// Connects with the default timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Self, ClientError> {
        let mut last = io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        );
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        for a in addrs {
            match TcpStream::connect_timeout(&a, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(RpcClient { stream });
                }
                Err(e) => last = e,
            }
        }
        Err(ClientError::Io(last))
    }

    /// One request/response exchange. Typed server refusals come back as
    /// `Ok(Response::Error(..))`; the convenience wrappers below lift them
    /// into [`ClientError::Rejected`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode(request))?;
        let payload = read_frame(&mut self.stream)?;
        Ok(decode::<Response>(&payload)?)
    }

    /// Submits a job, returning its fleet-unique id.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<u64, ClientError> {
        match self.request(&Request::Submit(spec.clone()))? {
            Response::Submitted { job_id } => Ok(job_id),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submits with saturation retry: exponential backoff starting at
    /// `policy.initial_backoff`, each wait capped by both
    /// `policy.max_backoff` and the server's `retry_after_secs` hint.
    /// Non-saturation rejections fail immediately.
    pub fn submit_with_retry(
        &mut self,
        spec: &SubmitSpec,
        policy: &RetryPolicy,
    ) -> Result<u64, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut backoff = policy.initial_backoff;
        let mut last = None;
        for attempt in 0..attempts {
            match self.submit(spec) {
                Ok(id) => return Ok(id),
                Err(ClientError::Rejected(frame)) if frame.kind == ErrorKind::Saturated => {
                    let mut wait = backoff.min(policy.max_backoff);
                    if let Some(hint) = frame.retry_after_secs {
                        if hint.is_finite() && hint >= 0.0 {
                            wait = wait.min(Duration::from_secs_f64(hint));
                        }
                    }
                    last = Some(frame);
                    if attempt + 1 < attempts {
                        thread::sleep(wait);
                        backoff = backoff.saturating_mul(2).min(policy.max_backoff);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: last.expect("at least one rejection before exhaustion"),
        })
    }

    /// One job's status.
    pub fn status(&mut self, job_id: u64) -> Result<JobStatus, ClientError> {
        match self.request(&Request::Status { job_id })? {
            Response::Job(status) => Ok(status),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Every admitted job's status, sorted by id.
    pub fn list_jobs(&mut self) -> Result<Vec<JobStatus>, ClientError> {
        match self.request(&Request::ListJobs)? {
            Response::Jobs(jobs) => Ok(jobs),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The fleet's metrics exposition (Prometheus-style text, both clock
    /// domains, gauges refreshed at scrape time).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The fleet's retained structured events (sim domain first, each in
    /// sequence order).
    pub fn events(&mut self) -> Result<Vec<nnrt_obs::Event>, ClientError> {
        match self.request(&Request::Events)? {
            Response::Events(events) => Ok(events),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The profile store's counters and snapshot document.
    pub fn snapshot(&mut self) -> Result<SnapshotInfo, ClientError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshot(info) => Ok(info),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Gracefully stops the server, returning the final
    /// [`nnrt_serve::FleetReport`] JSON it flushed.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye { report } => Ok(report),
            Response::Error(frame) => Err(ClientError::Rejected(frame)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
