//! Quickstart: build a small training-step graph, let the runtime profile it
//! with the hill-climbing performance model, and compare one step under the
//! paper's four scheduling strategies against the TensorFlow-guide
//! recommendation (inter-op = 1, intra-op = 68).
//!
//! Run with: `cargo run --release --example quickstart`

use nnrt::prelude::*;
use nnrt::sched::OpCatalog;
use nnrt_graph::OpAux;

fn main() {
    // 1. A miniature training step: a chain of convolutions forward, their
    //    sibling backprops backward, and an optimizer fan-out — the
    //    dependency shapes the paper's scheduler exploits.
    let mut g = DataflowGraph::new();
    let shape = Shape::nhwc(32, 8, 8, 384);
    let aux = OpAux::conv(3, 1, 384);
    let mut prev = None;
    for _ in 0..4 {
        let deps: Vec<_> = prev.into_iter().collect();
        let conv = g.add(
            nnrt_graph::OpInstance::with_aux(OpKind::Conv2D, shape.clone(), aux),
            &deps,
        );
        prev = Some(g.add_op(OpKind::Relu, shape.clone(), &[conv]));
    }
    let mut grad = prev.unwrap();
    let mut weight_grads = Vec::new();
    for _ in 0..4 {
        let cbf = g.add(
            nnrt_graph::OpInstance::with_aux(OpKind::Conv2DBackpropFilter, shape.clone(), aux),
            &[grad],
        );
        let cbi = g.add(
            nnrt_graph::OpInstance::with_aux(OpKind::Conv2DBackpropInput, shape.clone(), aux),
            &[grad],
        );
        weight_grads.push(cbf);
        grad = cbi;
    }
    for wg in weight_grads {
        g.add_op(OpKind::ApplyAdam, Shape::vec1(1_327_104), &[wg]);
    }
    println!(
        "graph: {} ops, critical path {}",
        g.len(),
        g.critical_path_len()
    );

    // 2. Baseline: the TensorFlow performance guide's recommendation.
    let catalog = OpCatalog::new(&g);
    let cost = KnlCostModel::knl();
    let baseline =
        TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
    println!(
        "recommendation (inter=1, intra=68): {:.2} ms",
        baseline.total_secs * 1e3
    );

    // 3. Our runtime: profile with hill climbing, then schedule with
    //    Strategies 1-4.
    let runtime = Runtime::prepare(&g, cost, RuntimeConfig::default());
    println!(
        "profiling cost: {} standalone measurements (~{} profiling steps)",
        runtime.model().measurements,
        runtime.model().profiling_steps
    );
    let ours = runtime.run_step(&g);
    println!(
        "our runtime (Strategies 1-4):      {:.2} ms",
        ours.total_secs * 1e3
    );
    println!("speedup: {:.2}x", baseline.total_secs / ours.total_secs);

    // 4. What the runtime decided, per op kind.
    println!("\nchosen intra-op parallelism per key:");
    for key in catalog.keys() {
        let (threads, mode) = runtime.plan().threads_for(key);
        println!(
            "  {:24} {}  -> {threads} threads ({mode:?})",
            key.0.to_string(),
            key.1
        );
    }
}
