//! Multi-KNL training (the paper's Section V): data-parallel DCGAN and
//! model-parallel Inception-v3 over a simulated Aries-connected cluster.
//!
//! Run with: `cargo run --release --example multi_knl`

use nnrt::cluster::{DataParallelTrainer, ModelParallelTrainer};

fn main() {
    println!("== data parallelism: DCGAN, global batch 64 ==");
    let single = DataParallelTrainer::new(1).step(64, |b| nnrt::models::dcgan(b).graph);
    for nodes in [1u32, 2, 4, 8] {
        let report = DataParallelTrainer::new(nodes).step(64, |b| nnrt::models::dcgan(b).graph);
        println!(
            "{nodes} node(s): compute {:6.1} ms + all-reduce {:5.2} ms = {:6.1} ms  (strong-scaling speedup {:.2}x)",
            report.compute_secs * 1e3,
            report.sync_secs * 1e3,
            report.total_secs * 1e3,
            single.total_secs / report.total_secs,
        );
    }

    println!("\n== model parallelism: Inception-v3, batch 8 ==");
    let g = nnrt::models::inception_v3(8).graph;
    for nodes in [1u32, 2, 4] {
        let report = ModelParallelTrainer::new(nodes).step(&g);
        let avg: f64 = report.avg_corunning.iter().sum::<f64>() / report.avg_corunning.len() as f64;
        println!(
            "{nodes} partition(s): step {:6.1} ms (transfers {:.2} ms), avg co-running ops per node {:.2}",
            report.total_secs * 1e3,
            report.transfer_secs * 1e3,
            avg
        );
    }
    println!(
        "\nAs the paper's Section V argues: data parallelism leaves the per-node\n\
         scheduler untouched, while model parallelism shrinks each node's ready\n\
         pool and with it the co-running opportunity."
    );
}
