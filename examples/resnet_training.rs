//! Simulated ResNet-50 training on the 68-core KNL: runs several training
//! steps under the recommendation, under Strategies 1+2 only, and under the
//! full runtime, and prints a per-kind breakdown plus co-running statistics —
//! the whole paper pipeline on one model.
//!
//! Run with: `cargo run --release --example resnet_training`

use nnrt::prelude::*;
use nnrt::sched::{CorunStats, OpCatalog};

fn main() {
    let spec = resnet50(64);
    println!(
        "{}: {} ops per training step, {} distinct (kind, shape) keys\n",
        spec.name,
        spec.graph.len(),
        spec.graph.distinct_keys().len()
    );

    let catalog = OpCatalog::new(&spec.graph);
    let cost = KnlCostModel::knl();

    // The baseline the paper compares against.
    let rec =
        TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&spec.graph, &catalog, &cost);
    println!("recommendation step time: {:.0} ms", rec.total_secs * 1e3);
    println!("top op kinds under the recommendation:");
    for &(kind, secs, n) in rec.top_kinds(5) {
        println!(
            "  {:24} {:7.1} ms  ({n} instances)",
            kind.to_string(),
            secs * 1e3
        );
    }

    // Profile once, then train: the profiling steps are a tiny fraction of a
    // real training job's thousands of steps (the paper: < 0.05%).
    let mut runtime = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
    runtime.record_trace(true);
    println!(
        "\nprofiled {} keys in ~{} profiling steps",
        spec.graph.distinct_keys().len(),
        runtime.model().profiling_steps
    );

    let mut last = None;
    for step in 1..=3 {
        let report = runtime.run_step(&spec.graph);
        let stats = CorunStats::middle_window(&report.trace, 6000);
        println!(
            "step {step}: {:.0} ms  (speedup {:.2}x, avg co-running ops {:.2}, max {})",
            report.total_secs * 1e3,
            rec.total_secs / report.total_secs,
            stats.avg_corunning,
            stats.max_corunning
        );
        last = Some(report);
    }

    let report = last.expect("ran steps");
    println!("\ntop op kinds under our runtime:");
    for &(kind, secs, n) in report.top_kinds(5) {
        let rec_time = rec.kind_time(kind).unwrap_or(secs);
        println!(
            "  {:24} {:7.1} ms  ({n} instances, {:.2}x vs recommendation)",
            kind.to_string(),
            secs * 1e3,
            rec_time / secs
        );
    }
}
