//! Real training with the real kernels: a 2-layer MLP learns a synthetic
//! 10-class problem using `nnrt-kernels` end to end — forward matmuls,
//! softmax cross-entropy, full backward pass and Adam — with every kernel's
//! thread count chosen by the paper's hill climber on *this* machine.
//!
//! The loss printout demonstrates that the kernels compute correct
//! gradients; the per-kernel thread counts demonstrate the tuner.
//!
//! Run with: `cargo run --release --example train_mlp`

use nnrt::kernels::elementwise::{adam_step, bias_add, bias_add_grad, relu, zip_map};
use nnrt::kernels::matmul::{matmul, matmul_at_b};
use nnrt::kernels::softmax::sparse_softmax_cross_entropy;
use nnrt::kernels::{hill_climb_threads, Tensor};

const IN: usize = 64;
const HIDDEN: usize = 128;
const CLASSES: usize = 10;
const BATCH: usize = 64;

/// Synthetic linearly-separable-ish data: class = argmax of 10 fixed random
/// projections of the input.
fn make_batch(seed: usize) -> (Vec<f32>, Vec<usize>) {
    let x = Tensor::sequence(&[BATCH, IN], 1.0);
    let proj = Tensor::sequence(&[IN, CLASSES], 1.0);
    let mut logits = vec![0.0f32; BATCH * CLASSES];
    matmul(1, x.data(), proj.data(), &mut logits, BATCH, IN, CLASSES);
    let labels = logits
        .chunks(CLASSES)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        })
        .collect();
    // Perturb inputs per "epoch" so batches differ slightly.
    let mut data = x.data().to_vec();
    for (i, v) in data.iter_mut().enumerate() {
        *v += ((i * 31 + seed * 7) % 13) as f32 * 1e-3;
    }
    (data, labels)
}

struct Mlp {
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
    // Adam state.
    m: [Vec<f32>; 4],
    v: [Vec<f32>; 4],
}

impl Mlp {
    fn new() -> Self {
        let w1 = Tensor::sequence(&[IN, HIDDEN], 0.2).data().to_vec();
        let w2 = Tensor::sequence(&[HIDDEN, CLASSES], 0.2).data().to_vec();
        Mlp {
            m: [
                vec![0.0; w1.len()],
                vec![0.0; HIDDEN],
                vec![0.0; w2.len()],
                vec![0.0; CLASSES],
            ],
            v: [
                vec![0.0; w1.len()],
                vec![0.0; HIDDEN],
                vec![0.0; w2.len()],
                vec![0.0; CLASSES],
            ],
            w1,
            b1: vec![0.0; HIDDEN],
            w2,
            b2: vec![0.0; CLASSES],
        }
    }

    /// One training step; returns the loss.
    fn step(&mut self, threads: usize, x: &[f32], labels: &[usize], t: u32) -> f32 {
        // Forward.
        let mut h_pre = vec![0.0f32; BATCH * HIDDEN];
        matmul(threads, x, &self.w1, &mut h_pre, BATCH, IN, HIDDEN);
        bias_add(threads, &mut h_pre, &self.b1);
        let mut h = h_pre.clone();
        relu(threads, &mut h);
        let mut logits = vec![0.0f32; BATCH * CLASSES];
        matmul(threads, &h, &self.w2, &mut logits, BATCH, HIDDEN, CLASSES);
        bias_add(threads, &mut logits, &self.b2);

        // Loss + d logits.
        let mut dlogits = vec![0.0f32; BATCH * CLASSES];
        let loss = sparse_softmax_cross_entropy(threads, &logits, labels, &mut dlogits, CLASSES);

        // Backward.
        let db2 = bias_add_grad(threads, &dlogits, CLASSES);
        let mut dw2 = vec![0.0f32; HIDDEN * CLASSES];
        matmul_at_b(threads, &h, &dlogits, &mut dw2, HIDDEN, BATCH, CLASSES);
        // dh = dlogits * w2^T : compute via transposed weights.
        let mut w2_t = vec![0.0f32; CLASSES * HIDDEN];
        for i in 0..HIDDEN {
            for j in 0..CLASSES {
                w2_t[j * HIDDEN + i] = self.w2[i * CLASSES + j];
            }
        }
        let mut dh = vec![0.0f32; BATCH * HIDDEN];
        matmul(threads, &dlogits, &w2_t, &mut dh, BATCH, CLASSES, HIDDEN);
        // Through ReLU: zero where the pre-activation was negative.
        let mut dh_masked = vec![0.0f32; BATCH * HIDDEN];
        zip_map(threads, &dh, &h_pre, &mut dh_masked, |g, pre| {
            if pre > 0.0 {
                g
            } else {
                0.0
            }
        });
        let db1 = bias_add_grad(threads, &dh_masked, HIDDEN);
        let mut dw1 = vec![0.0f32; IN * HIDDEN];
        matmul_at_b(threads, x, &dh_masked, &mut dw1, IN, BATCH, HIDDEN);

        // Adam updates.
        let lr = 5e-3;
        adam_step(
            threads,
            &mut self.w1,
            &dw1,
            &mut self.m[0],
            &mut self.v[0],
            lr,
            0.9,
            0.999,
            1e-8,
            t,
        );
        adam_step(
            threads,
            &mut self.b1,
            &db1,
            &mut self.m[1],
            &mut self.v[1],
            lr,
            0.9,
            0.999,
            1e-8,
            t,
        );
        adam_step(
            threads,
            &mut self.w2,
            &dw2,
            &mut self.m[2],
            &mut self.v[2],
            lr,
            0.9,
            0.999,
            1e-8,
            t,
        );
        adam_step(
            threads,
            &mut self.b2,
            &db2,
            &mut self.m[3],
            &mut self.v[3],
            lr,
            0.9,
            0.999,
            1e-8,
            t,
        );
        loss
    }
}

fn main() {
    // Tune the step's thread count with the paper's hill climber on a
    // throwaway model (one step = one measurement).
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let (x0, y0) = make_batch(0);
    let tune = {
        let mut probe = Mlp::new();
        let mut t = 0;
        hill_climb_threads(
            |threads| {
                t += 1;
                probe.step(threads, &x0, &y0, t);
            },
            1,
            hw.max(4),
            2,
        )
    };
    println!(
        "hill climber picked {} thread(s) for the training step ({} samples)\n",
        tune.best_threads,
        tune.samples.len()
    );

    let mut mlp = Mlp::new();
    let mut first = None;
    let mut last = 0.0;
    for step in 1..=60u32 {
        let (x, y) = make_batch(step as usize % 5);
        last = mlp.step(tune.best_threads, &x, &y, step);
        first.get_or_insert(last);
        if step % 10 == 0 || step == 1 {
            println!("step {step:3}: loss {last:.4}");
        }
    }
    let first = first.unwrap();
    println!("\nloss {first:.4} -> {last:.4}");
    assert!(
        last < first * 0.5,
        "training must reduce the loss substantially"
    );
    println!("training works: real kernels, real gradients, tuned concurrency.");
}
