//! The paper's Section VII preliminary GPU study, end to end: sweep both
//! intra-op parallelism dimensions of a P100 launch configuration for the
//! five studied ops, find each op's best configuration, and measure the
//! benefit of co-running two instances on two CUDA streams.
//!
//! Run with: `cargo run --release --example gpu_study`

use nnrt::gpu::{gpu_op, GpuModel, GpuOpKind, LaunchConfig};

fn main() {
    let m = GpuModel::p100();
    let default = LaunchConfig::tf_default();
    println!(
        "device: {} SMs, {:.1} Tflop/s FP32, {:.0} GB/s HBM2\n",
        m.spec().sms,
        m.spec().peak_flops() / 1e12,
        m.spec().hbm_bw / 1e9
    );

    for kind in GpuOpKind::ALL {
        let k = gpu_op(kind);
        let t_default = m.time(&k, default);

        // Exhaustive 2-D search (the search space the paper's future work
        // wants to shrink to O(2n) by treating the axes independently).
        let mut best = (default, t_default);
        for &tpb in &[64u32, 128, 256, 512, 1024, 2048, 4096, 8192, 16384] {
            for &nb in &[14u32, 28, 56, 112, 224, 448, 896] {
                let cfg = LaunchConfig {
                    threads_per_block: tpb,
                    num_blocks: nb,
                };
                let t = m.time(&k, cfg);
                if t < best.1 {
                    best = (cfg, t);
                }
            }
        }

        // The paper's dimensional-independence observation: searching each
        // axis separately (O(2n)) should land near the joint optimum.
        let best_tpb = [64u32, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
            .into_iter()
            .min_by(|&a, &b| {
                let ta = m.time(
                    &k,
                    LaunchConfig {
                        threads_per_block: a,
                        ..default
                    },
                );
                let tb = m.time(
                    &k,
                    LaunchConfig {
                        threads_per_block: b,
                        ..default
                    },
                );
                ta.partial_cmp(&tb).unwrap()
            })
            .unwrap();
        let best_nb = [14u32, 28, 56, 112, 224, 448, 896]
            .into_iter()
            .min_by(|&a, &b| {
                let ta = m.time(
                    &k,
                    LaunchConfig {
                        threads_per_block: best_tpb,
                        num_blocks: a,
                    },
                );
                let tb = m.time(
                    &k,
                    LaunchConfig {
                        threads_per_block: best_tpb,
                        num_blocks: b,
                    },
                );
                ta.partial_cmp(&tb).unwrap()
            })
            .unwrap();
        let independent = m.time(
            &k,
            LaunchConfig {
                threads_per_block: best_tpb,
                num_blocks: best_nb,
            },
        );

        let corun = m.corun_speedup(&k, default);
        println!("{}:", kind.name());
        println!(
            "  default (1024 t/b, 56 blocks): {:.1} us   joint best ({} t/b, {} blocks): {:.1} us ({:+.1}%)",
            t_default * 1e6,
            best.0.threads_per_block,
            best.0.num_blocks,
            best.1 * 1e6,
            (t_default / best.1 - 1.0) * 100.0
        );
        println!(
            "  independent-axis search lands within {:.1}% of the joint best",
            (independent / best.1 - 1.0) * 100.0
        );
        println!("  two-stream co-run speedup over serial: {corun:.2}x\n");
    }
}
