//! The paper's hill-climbing concurrency search against *real* kernels on
//! *this* machine: tunes the thread count of an actual conv2d, matmul and
//! Adam update using wall-clock measurements, exactly like the simulated
//! profiler tunes ops on the virtual KNL.
//!
//! Run with: `cargo run --release --example autotune_kernels`

use nnrt::kernels::conv::conv2d;
use nnrt::kernels::elementwise::adam_step;
use nnrt::kernels::matmul::matmul;
use nnrt::kernels::{hill_climb_threads, Tensor};

fn main() {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // Let the climber explore a little past the hardware width even on tiny
    // machines, so the stop-on-rise behaviour is visible.
    let max_threads = hw.max(8);
    println!("host machine: {hw} hardware threads; climbing up to {max_threads} with stride 1, 3 reps per point\n");

    // Conv2D on an Inception-sized feature map.
    let x = Tensor::sequence(&[8, 17, 17, 64], 1.0);
    let f = Tensor::sequence(&[3, 3, 64, 64], 0.5);
    let result = hill_climb_threads(
        |t| {
            conv2d(t, &x, &f, 1);
        },
        1,
        max_threads,
        3,
    );
    report("conv2d 8x17x17x64 -> 64ch", &result);

    // A mid-size matmul.
    let (m, k, n) = (256, 512, 256);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.1).collect();
    let mut c = vec![0.0f32; m * n];
    let result = hill_climb_threads(|t| matmul(t, &a, &b, &mut c, m, k, n), 1, max_threads, 3);
    report("matmul 256x512x256", &result);

    // A streaming Adam update over 4M parameters: memory-bound, so the
    // optimum should land well below the conv's (the paper's Observation 1).
    let nparams = 4_000_000;
    let grad: Vec<f32> = (0..nparams)
        .map(|i| ((i % 101) as f32 - 50.0) * 1e-4)
        .collect();
    let mut p = vec![0.1f32; nparams];
    let mut mm = vec![0.0f32; nparams];
    let mut vv = vec![0.0f32; nparams];
    let result = hill_climb_threads(
        |t| {
            adam_step(
                t, &mut p, &grad, &mut mm, &mut vv, 1e-3, 0.9, 0.999, 1e-8, 1,
            )
        },
        1,
        max_threads,
        3,
    );
    report("adam 4M params", &result);

    println!(
        "\nAs in the paper: different operations want different thread counts, and the\n\
         hill climber finds each optimum in a handful of measurements instead of a\n\
         full sweep."
    );
}

fn report(name: &str, r: &nnrt::kernels::TuneResult) {
    let t1 = r.samples.first().map(|&(_, t)| t).unwrap_or(r.best_secs);
    println!(
        "{name}: best {} threads at {:.2} ms ({:.1}x over 1 thread, {} samples)",
        r.best_threads,
        r.best_secs * 1e3,
        t1 / r.best_secs,
        r.samples.len()
    );
    let curve: Vec<String> = r
        .samples
        .iter()
        .map(|&(p, t)| format!("{p}:{:.1}ms", t * 1e3))
        .collect();
    println!("  climb: {}", curve.join(" -> "));
}
