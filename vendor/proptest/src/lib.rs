//! Vendored minimal `proptest` stand-in covering the API surface this
//! workspace uses: range/tuple/`Just`/`select`/`vec` strategies, `prop_map`,
//! the `proptest!` macro (with optional `#![proptest_config(...)]` header),
//! `prop_oneof!` and `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking is performed: a failing case panics with the sampled inputs'
//! case number so it can be rerun. Sampling is deterministic per test
//! function (fixed seed), so failures reproduce exactly.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A deterministic RNG (fixed seed; one per test function).
    pub fn deterministic() -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(0x5EED_CAFE_F00D_0001))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice set");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; these property tests drive whole
        // simulated runtimes, so keep the deterministic sweep shorter.
        ProptestConfig { cases: 32 }
    }
}

/// A failed test case (carried out of the test body by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// Size specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi == self.size.lo {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    /// Strategy for [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].sample(rng)
    }
}

/// Everything tests typically import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Defines property tests. Each function samples its arguments from the
/// given strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( ::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_> ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 5usize..=6, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y == 5 || y == 6);
            prop_assert!((0.25..0.75).contains(&f), "f was {}", f);
        }

        #[test]
        fn vec_and_select(v in collection::vec((0u32..4, 1usize..=2), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert_eq!(b.min(2), b);
            }
        }

        #[test]
        fn oneof_and_map(k in prop_oneof![Just(1u8), Just(7u8)], s in sample::select(vec!["a", "b"])) {
            prop_assert!(k == 1u8 || k == 7u8);
            prop_assert_ne!(s, "c");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_is_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (1u32..5).prop_map(|x| x * 10);
        let mut rng = TestRng::deterministic();
        for _ in 0..20 {
            let v = strat.sample(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }
}
