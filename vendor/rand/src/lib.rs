//! Vendored minimal stand-in for the `rand` crate, covering exactly the API
//! surface this workspace uses: [`RngCore`], [`Rng::gen`], [`SeedableRng`]
//! and [`seq::SliceRandom::shuffle`]. Streams are *not* bit-compatible with
//! upstream `rand`; determinism under a fixed seed is the only contract.

#![warn(missing_docs)]

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// One uniform sample of `T` (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniform integer in `[0, bound)` (modulo reduction; the tiny bias is
    /// irrelevant for simulation workloads).
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_index(self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
