//! Vendored minimal `serde_derive`: `#[derive(Serialize, Deserialize)]` for
//! the item shapes this workspace uses — structs with named fields, tuple
//! structs, unit structs and fieldless enums. Generics and enum payloads are
//! rejected with a compile error. Parsing is done directly on the
//! `proc_macro` token stream (no `syn`/`quote`), and code is generated as a
//! string and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported ({name})");
        }
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name: name.clone(),
                variants: parse_variants(&name, g.stream()),
            },
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:` then the type; skip to the next top-level comma. Angle
        // brackets don't nest via groups, but commas inside `<...>` or
        // parens/brackets must not split fields — track angle depth manually
        // (groups are single tokens, so parens/brackets are already opaque).
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct body (top-level comma count + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut arity = 1;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    arity += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    arity
}

/// Variant names of a fieldless enum; panics on payload-carrying variants.
fn parse_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let variant = id.to_string();
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(variant);
                i += 1;
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive (vendored): enum {enum_name} variant {variant} carries data; \
                 only fieldless enums are supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "serde_derive (vendored): explicit discriminants are not supported \
                 ({enum_name}::{variant})"
            ),
            other => panic!("serde_derive: unexpected token after variant {variant}: {other:?}"),
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(vec![{}])\n\
                   }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_json_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_json_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(vec![{}])\n\
                   }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_json_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> ::serde::Value {{\n\
                     match self {{ {} }}\n\
                   }}\n\
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(v.get(\"{f}\")\
                           .ok_or_else(|| ::serde::Error::missing_field(\"{name}\", \"{f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name} {{ {} }})\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok({name}(::serde::Deserialize::from_json_value(v)?))\n\
               }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_json_value(&arr[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let arr = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\n\
                     if arr.len() != {arity} {{\n\
                       return Err(::serde::Error::msg(format!(\n\
                         \"expected {arity} elements for {name}, got {{}}\", arr.len())));\n\
                     }}\n\
                     Ok({name}({}))\n\
                   }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_json_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok({name})\n\
               }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v})")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let s = v.as_str().ok_or_else(|| ::serde::Error::expected(\"string ({name} variant)\", v))?;\n\
                     match s {{\n\
                       {},\n\
                       other => Err(::serde::Error::msg(format!(\n\
                         \"unknown {name} variant `{{other}}`\"))),\n\
                     }}\n\
                   }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}
