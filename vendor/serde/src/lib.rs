//! Vendored minimal `serde` facade for offline builds.
//!
//! Unlike real serde's visitor architecture, this crate serializes through a
//! concrete JSON [`Value`] tree: [`Serialize`] renders a value into a
//! `Value`, [`Deserialize`] rebuilds it from one. The derive macros (from the
//! sibling `serde_derive` crate) cover the shapes this workspace uses —
//! named-field structs, tuple structs and fieldless enums. The companion
//! vendored `serde_json` crate adds text parsing/printing and the `json!`
//! macro on top of the same `Value`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::Uint`]).
    Int(i64),
    /// A non-negative integer.
    Uint(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A new error with `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Error for a missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind_name()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a `Value`.
    fn to_json_value(&self) -> Value;
}

/// Types rebuildable from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `v`.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

impl Value {
    /// Human name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Uint(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index, if this is an array containing it.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Uint(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Uint(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Uint(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(m) = self else {
            panic!("cannot index non-object value with a string key");
        };
        if let Some(pos) = m.iter().position(|(k, _)| k == key) {
            &mut m[pos].1
        } else {
            m.push((key.to_string(), Value::Null));
            &mut m.last_mut().unwrap().1
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            other => panic!("cannot index {} with a usize", other.kind_name()),
        }
    }
}

fn num_eq(v: &Value, n: f64) -> bool {
    v.as_f64() == Some(n)
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                num_eq(self, *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                num_eq(other, *self as f64)
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f64, f32);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for primitives and containers.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Uint(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Uint(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        arr.iter().map(T::from_json_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_json_value(v)?;
        let n = vec.len();
        <[T; N]>::try_from(vec)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array (tuple)", v))?;
                let expect = [$($idx),+].len();
                if arr.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect} elements, got {}", arr.len()
                    )));
                }
                Ok(($($name::from_json_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Non-string keys force the entry-list representation; BTreeMap
        // iteration order makes it deterministic.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::from_json_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::from_json_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing() {
        let mut v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::Uint(1), Value::Uint(2)]),
        )]);
        assert_eq!(v["a"][0], 1);
        assert!(v["missing"].is_null());
        v["a"][1] = Value::Uint(9);
        assert_eq!(v["a"][1], 9u64);
        v["b"] = Value::Bool(true);
        assert_eq!(v["b"], true);
    }

    #[test]
    fn tuple_and_array_roundtrip() {
        let t = (1u32, 2.5f64, "x".to_string());
        let v = t.to_json_value();
        let back: (u32, f64, String) = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, t);

        let a = [1.0f64, 2.0, 3.0, 4.0];
        let back: [f64; 4] = Deserialize::from_json_value(&a.to_json_value()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn option_null() {
        let v: Option<u32> = None;
        assert!(v.to_json_value().is_null());
        let back: Option<u32> = Deserialize::from_json_value(&Value::Uint(3)).unwrap();
        assert_eq!(back, Some(3));
    }
}
