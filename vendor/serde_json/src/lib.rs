//! Vendored minimal `serde_json` over the vendored `serde` [`Value`] model:
//! text parsing and printing, `to_string`/`from_str`, `to_value`/`from_value`
//! and a small [`json!`] macro. Output is deterministic: object members print
//! in stored order and floats use Rust's shortest round-trip formatting (with
//! a `.0` suffix for integral values, as upstream serde_json does).

#![warn(missing_docs)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` into a JSON [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Rebuilds `T` from a JSON [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json_value(&v)
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Uint(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // Upstream serde_json writes null for non-finite floats.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates become the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: back up and take
                    // the full code point.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch_len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..ch_len.min(rest.len())])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = chunk.chars().next().unwrap();
                    s.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Builds a [`Value`] from a JSON-ish literal. Supports `null`, booleans,
/// arrays, objects with string-literal keys, and arbitrary serializable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value must serialize")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v: Value = from_str(r#"{"a":[1,2.5,-3],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], -3);
        assert_eq!(v["b"], "x\ny");
        assert!(v["c"].is_null());
        assert_eq!(v["d"], true);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formatting_roundtrips() {
        for f in [0.1, 1.0, -2.5e-7, 123456.789, 1e300, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn integral_float_gets_dot_zero() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn json_macro() {
        let v = json!([0]);
        assert_eq!(v[0], 0);
        let o = json!({"k": [1, 2], "s": "t"});
        assert_eq!(o["k"][1], 2);
        assert_eq!(o["s"], "t");
    }

    #[test]
    fn pretty_printing_parses_back() {
        let v = json!({"a": [1, 2], "b": {"c": null}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_typed_not_panics() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
