//! Vendored minimal `criterion` stand-in for offline builds. It keeps the
//! `criterion_group!`/`criterion_main!`/`bench_function` shape so bench
//! targets compile and run, but does simple fixed-iteration wall-clock
//! timing instead of statistical analysis.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            total: Duration::ZERO,
            timed_iters: 0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.total += start.elapsed();
        self.timed_iters += self.iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.total += start.elapsed();
        }
        self.timed_iters += self.iters;
    }

    /// Like [`Bencher::iter_batched`], taking inputs by reference.
    pub fn iter_batched_ref<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> R,
    {
        std_black_box(routine(&mut setup()));
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            self.total += start.elapsed();
        }
        self.timed_iters += self.iters;
    }
}

/// Benchmark driver: runs each registered function and prints mean time.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Benches in this workspace simulate whole training steps; keep the
        // iteration count small so `cargo bench` finishes quickly.
        let iters = std::env::var("NNRT_BENCH_ITERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Accepted for API compatibility; returns `self` unchanged.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream tunes the statistical sample count; here it caps the
    /// fixed iteration count (`NNRT_BENCH_ITERS` still wins if smaller).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.iters = self.iters.min(n as u64).max(1);
        self
    }

    /// Benchmarks `f` under `name`, printing the per-iteration mean.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        let mean = if b.timed_iters > 0 {
            b.total / b.timed_iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {name:<48} {mean:>12.3?}/iter ({} iters)",
            b.timed_iters
        );
        self
    }

    /// Finalises reporting (no-op here).
    pub fn final_summary(&mut self) {}
}

/// Groups benchmark functions under one runner, mirroring criterion's macro.
/// Supports both the terse form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Generates `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        c.bench_function("sum_batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
