//! Vendored ChaCha8-based RNG implementing the vendored `rand` traits.
//!
//! This is a genuine ChaCha8 core (IETF layout, 64-bit block counter), so
//! statistical quality matches upstream; the output *stream* is not
//! bit-compatible with the real `rand_chacha` crate, which is fine because
//! the workspace only relies on seeded determinism.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the (zero) nonce.
        let mut x = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = x[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
