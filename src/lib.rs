//! # nnrt — Runtime Concurrency Control and Operation Scheduling for NN Training
//!
//! A from-scratch Rust reproduction of Liu, Li, Kestor & Vetter,
//! *"Runtime Concurrency Control and Operation Scheduling for High Performance
//! Neural Network Training"*, IPDPS 2019 (arXiv:1810.08955).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`manycore`] — KNL-like discrete-event manycore simulator + cost model.
//! * [`graph`] — dataflow graphs of NN training operations.
//! * [`models`] — training-step graph builders (ResNet-50, DCGAN,
//!   Inception-v3, LSTM).
//! * [`counters`] — simulated hardware performance-event counters.
//! * [`regress`] — from-scratch regression models (the paper's rejected
//!   performance-model baseline).
//! * [`sched`] — the paper's contribution: hill-climbing performance model
//!   and the four co-run scheduling strategies.
//! * [`kernels`] — real parallel CPU kernels on a controllable thread pool,
//!   for running the same auto-tuning loop on the host machine.
//! * [`gpu`] — the Section VII preliminary-study GPU simulator.
//! * [`cluster`] — multi-KNL data/model parallelism (the paper's Section V,
//!   implemented rather than left as future work).
//! * [`serve`] — multi-tenant training-job service: admission, placement,
//!   and a shared persistent profile store for warm-started jobs.
//! * [`rpc`] — networked job-submission front-end for the fleet:
//!   length-prefixed JSON-over-TCP protocol, threaded server, and a
//!   blocking, retrying client.
//! * [`obs`] — unified observability: dual-clocked metrics registry,
//!   structured event tracing, and the Prometheus-style text exposition
//!   scraped by `nnrt metrics` / rendered by `nnrt top`.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use nnrt_cluster as cluster;
pub use nnrt_counters as counters;
pub use nnrt_gpu as gpu;
pub use nnrt_graph as graph;
pub use nnrt_kernels as kernels;
pub use nnrt_manycore as manycore;
pub use nnrt_models as models;
pub use nnrt_obs as obs;
pub use nnrt_regress as regress;
pub use nnrt_rpc as rpc;
pub use nnrt_sched as sched;
pub use nnrt_serve as serve;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use nnrt_graph::{DataflowGraph, OpInstance, OpKind, Shape};
    pub use nnrt_manycore::{
        CostModel, Engine, KnlCostModel, KnlParams, NoiseModel, SharingMode, Topology, WorkProfile,
    };
    pub use nnrt_models::{dcgan, inception_v3, lstm, resnet50, ModelSpec};
    pub use nnrt_sched::{
        HillClimbModel, PerfModel, Runtime, RuntimeConfig, StepReport, TfExecutor, TfExecutorConfig,
    };
}
