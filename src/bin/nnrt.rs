//! `nnrt` — command-line front end to the runtime.
//!
//! ```text
//! nnrt compare <model> [batch]   one step: recommendation vs strategies 1-4
//! nnrt profile <model> [batch]   hill-climb profile: per-key optima
//! nnrt grid <model> [batch]      uniform (inter, intra) grid sweep
//! nnrt plan <model> [batch]      the thread plan Strategies 1+2 install
//! nnrt trace <model> [batch]     write a chrome://tracing JSON of one step
//! nnrt gpu                       Section VII launch-config tuning + streams
//! nnrt models                    list the built-in models
//! ```
//!
//! Models: `resnet50` (batch 64), `dcgan` (64), `inception` (16), `lstm` (20),
//! and beyond the paper: `transformer` (8).

use nnrt::prelude::*;
use nnrt::sched::OpCatalog;
use std::process::ExitCode;

fn model_by_name(name: &str, batch: Option<usize>) -> Option<ModelSpec> {
    let spec = match name {
        "resnet50" | "resnet-50" => resnet50(batch.unwrap_or(64)),
        "dcgan" => dcgan(batch.unwrap_or(64)),
        "inception" | "inception-v3" | "inception_v3" => inception_v3(batch.unwrap_or(16)),
        "lstm" => lstm(batch.unwrap_or(20)),
        "transformer" | "bert" => nnrt::models::transformer(batch.unwrap_or(8)),
        _ => return None,
    };
    Some(spec)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: nnrt <compare|profile|grid|plan|trace> <model> [batch]\n       nnrt gpu | nnrt models\n\
         models: resnet50, dcgan, inception, lstm, transformer"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "models" => {
            for m in nnrt::models::paper_models() {
                println!(
                    "{:14} batch {:3}   {:5} ops, {:4} distinct keys, critical path {}",
                    m.name,
                    m.batch,
                    m.graph.len(),
                    m.graph.distinct_keys().len(),
                    m.graph.critical_path_len()
                );
            }
            ExitCode::SUCCESS
        }
        "gpu" => {
            let m = nnrt::gpu::GpuModel::p100();
            println!("P100 launch-config tuning (O(2n) independent-axis search):");
            for kind in nnrt::gpu::GpuOpKind::ALL {
                let k = nnrt::gpu::gpu_op(kind);
                let tuned = nnrt::gpu::tune_independent(&m, &k);
                let default = m.time(&k, nnrt::gpu::LaunchConfig::tf_default());
                println!(
                    "  {:22} default {:9.1} us -> tuned {:9.1} us ({} t/b, {} blocks, {} evals)",
                    kind.name(),
                    default * 1e6,
                    tuned.secs * 1e6,
                    tuned.config.threads_per_block,
                    tuned.config.num_blocks,
                    tuned.evaluations
                );
            }
            let subs: Vec<nnrt::gpu::Submission> = nnrt::gpu::GpuOpKind::ALL
                .iter()
                .map(|&k| nnrt::gpu::Submission {
                    kernel: nnrt::gpu::gpu_op(k),
                    config: nnrt::gpu::LaunchConfig::tf_default(),
                })
                .collect();
            let sched = nnrt::gpu::schedule_streams(&m, &subs);
            println!(
                "stream packing of the 5 ops: serial {:.1} us -> {:.1} us ({} waves)",
                sched.serial * 1e6,
                sched.makespan * 1e6,
                sched.waves.len()
            );
            ExitCode::SUCCESS
        }
        "compare" | "profile" | "grid" | "plan" | "trace" => {
            let Some(name) = args.get(1) else { return usage() };
            let batch = args.get(2).and_then(|b| b.parse().ok());
            let Some(spec) = model_by_name(name, batch) else {
                eprintln!("unknown model '{name}'");
                return usage();
            };
            run_model_command(cmd, &spec);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn run_model_command(cmd: &str, spec: &ModelSpec) {
    let catalog = OpCatalog::new(&spec.graph);
    let cost = KnlCostModel::knl();
    match cmd {
        "compare" => {
            let rec = TfExecutor::new(TfExecutorConfig::recommendation())
                .run_step(&spec.graph, &catalog, &cost);
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            let ours = rt.run_step(&spec.graph);
            println!("{} (batch {}): {} ops", spec.name, spec.batch, spec.graph.len());
            println!("  recommendation (1, 68): {:8.1} ms", rec.total_secs * 1e3);
            println!(
                "  strategies 1-4:         {:8.1} ms   ({:.2}x)",
                ours.total_secs * 1e3,
                rec.total_secs / ours.total_secs
            );
            println!("  top kinds (ours):");
            for &(kind, secs, n) in ours.top_kinds(5) {
                println!("    {:24} {:8.1} ms  x{n}", kind.to_string(), secs * 1e3);
            }
        }
        "profile" => {
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            println!(
                "{}: profiled {} keys in ~{} steps ({} measurements)",
                spec.name,
                catalog.keys().len(),
                rt.model().profiling_steps,
                rt.model().measurements
            );
            let mut rows: Vec<_> = catalog
                .keys()
                .iter()
                .filter_map(|key| rt.model().best(key).map(|b| (key.clone(), b)))
                .collect();
            rows.sort_by(|a, b| b.1 .2.partial_cmp(&a.1 .2).unwrap());
            for (key, (threads, mode, secs)) in rows.iter().take(15) {
                println!(
                    "  {:24} {:18} -> {:2} threads ({:?}), {:9.3} ms",
                    key.0.to_string(),
                    key.1.to_string(),
                    threads,
                    mode,
                    secs * 1e3
                );
            }
            if rows.len() > 15 {
                println!("  ... and {} more keys", rows.len() - 15);
            }
        }
        "grid" => {
            let rec = TfExecutor::new(TfExecutorConfig::recommendation())
                .run_step(&spec.graph, &catalog, &cost)
                .total_secs;
            println!("{}: speedup over (1, 68) = {:.1} ms", spec.name, rec * 1e3);
            println!("{:>6} {:>6} {:>9}", "inter", "intra", "speedup");
            for inter in [1u32, 2, 4] {
                for intra in [16u32, 34, 68, 136] {
                    let t = TfExecutor::new(TfExecutorConfig { inter_op: inter, intra_op: intra })
                        .run_step(&spec.graph, &catalog, &cost)
                        .total_secs;
                    println!("{inter:>6} {intra:>6} {:>8.2}x", rec / t);
                }
            }
        }
        "trace" => {
            let mut rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            rt.record_trace(true);
            let report = rt.run_step(&spec.graph);
            let json = nnrt::sched::export_chrome_trace(&spec.graph, &report.timings);
            let path = format!("{}_trace.json", spec.name.to_lowercase().replace('-', "_"));
            std::fs::write(&path, json).expect("write trace file");
            println!(
                "{}: wrote {path} ({} ops, step {:.1} ms) — open in chrome://tracing or Perfetto",
                spec.name,
                report.timings.len(),
                report.total_secs * 1e3
            );
        }
        "plan" => {
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            println!("{}: Strategy 1+2 thread plan (per kind, largest instance):", spec.name);
            let mut seen = std::collections::BTreeSet::new();
            for key in catalog.keys() {
                if !key.0.is_tunable() || !seen.insert(key.0) {
                    continue;
                }
                let (threads, mode) = rt.plan().threads_for(key);
                println!("  {:24} -> {threads:2} threads ({mode:?})", key.0.to_string());
            }
            println!("  (non-MKL kinds stay at the framework default of 68)");
        }
        _ => unreachable!(),
    }
}
