//! `nnrt` — command-line front end to the runtime.
//!
//! ```text
//! nnrt compare <model> [batch]   one step: recommendation vs strategies 1-4
//! nnrt profile <model> [batch]   hill-climb profile: per-key optima
//! nnrt grid <model> [batch]      uniform (inter, intra) grid sweep
//! nnrt plan <model> [batch]      the thread plan Strategies 1+2 install
//! nnrt trace <model> [batch]     write a chrome://tracing JSON of one step
//! nnrt serve [jobs] [nodes] [seed] [--backend <knl|gpu|cluster>] [--chaos <seed>]
//!            [--checkpoint-interval <steps>] [--profile-threads <n>] [--json]
//!                                multi-tenant fleet with a shared profile
//!                                store; prints the fleet report. `--backend
//!                                gpu` serves the jobs on P100-class stream
//!                                runtimes (2-D launch-config climbs +
//!                                concurrency-controlled co-running) instead
//!                                of KNL thread pools; `--backend cluster`
//!                                fronts each job with a multi-KNL cluster
//!                                head — gradients ride interconnect links
//!                                as events, overlapped with the backward
//!                                pass by critical-path out-of-order
//!                                backprop; `--chaos` arms a
//!                                seeded fault plan (node crash, straggler,
//!                                store corruption, profiling budget) sized
//!                                to the workload by a fault-free dry run;
//!                                `--profile-threads` shards each job's
//!                                profiling climbs across n workers
//!                                (default: available parallelism; 1 = the
//!                                legacy sequential path; any value yields
//!                                byte-identical reports); `--json` prints
//!                                the report as JSON instead of text.
//!                                Progress goes to stderr, so stdout stays
//!                                parseable
//! nnrt serve --listen <addr> [nodes] [seed] [--backend <knl|gpu|cluster>] [--hold]
//!            [--snapshot <path>] [--checkpoint-interval <steps>]
//!            [--profile-threads <n>] [--max-connections <n>]
//!            [--pipeline-depth <n>] [--json]
//!                                run the fleet behind the nnrt-rpc TCP
//!                                front-end instead of the built-in job mix;
//!                                `--listen 127.0.0.1:0` picks an ephemeral
//!                                port and prints `listening on <addr>`.
//!                                `--hold` queues all submissions and drains
//!                                only at shutdown (byte-identical reports);
//!                                `--snapshot` persists the profile store on
//!                                graceful shutdown. `--max-connections`
//!                                caps concurrent clients (default 4096);
//!                                `--pipeline-depth` caps in-flight requests
//!                                per connection (default 16)
//!
//! Both serve modes accept `--durable <dir>`: every fleet state transition
//! is journaled write-ahead to `<dir>/journal.log` and the profile store is
//! flushed to `<dir>/store.json` on a configurable simulated-clock interval
//! (`--flush-interval <secs>`, default 20). After a crash — even `kill -9`
//! — `--recover` replays snapshot + journal, resumes interrupted jobs from
//! their checkpoints, re-queues never-placed jobs in admission order, and
//! writes the accounting to `<dir>/recovery.json`.
//!
//! Both serve modes also accept `--events <path>`: after the run, the
//! simulated-clock structured event stream is written there as JSONL —
//! byte-identical across seed-identical runs, whatever the worker count.
//!
//! ```text
//! nnrt journal <dir> [--json]    inspect a durable directory's journal:
//!                                per-record-kind counts + torn-tail status
//! ```
//! nnrt submit <addr> <model> [batch] [--steps n] [--priority p]
//!             [--weight w] [--name s] [--no-retry]
//!                                submit one job to a listening server
//!                                (retries saturated rejections while
//!                                honoring the server's retry hint)
//! nnrt status <addr> [job_id]    one job's status, or all jobs
//! nnrt metrics <addr>            scrape a listening server's metrics
//!                                (Prometheus-style text, both clock domains)
//! nnrt top <addr> [--once] [--interval <secs>]
//!                                periodic one-screen live view of the fleet:
//!                                queue depth, per-node utilization, store
//!                                hit rate, fault counters, per-phase job
//!                                counts (rendered from the same exposition
//!                                `nnrt metrics` prints)
//! nnrt shutdown <addr> [--json]  drain the server and print its final report
//! nnrt gpu                       Section VII launch-config tuning + streams
//! nnrt models                    list the built-in models
//! ```
//!
//! Models: `resnet50` (batch 64), `dcgan` (64), `inception` (16), `lstm` (20),
//! and beyond the paper: `transformer` (8).
//!
//! Exit codes: 0 success, 1 usage, 2 unknown command, 3 unknown model,
//! 4 RPC failure (server unreachable, rejection, or protocol error),
//! 5 recovery failure (unreadable durable directory or corrupt journal).

use nnrt::prelude::*;
use nnrt::rpc::{
    ClientError, DrainPolicy, ErrorKind, FleetServer, RetryPolicy, RpcClient, ServerConfig,
    SubmitSpec,
};
use nnrt::sched::OpCatalog;
use std::process::ExitCode;

/// Usage or missing-argument error.
const EXIT_USAGE: u8 = 1;
/// The first argument names no known subcommand.
const EXIT_UNKNOWN_COMMAND: u8 = 2;
/// A model argument names no known model.
const EXIT_UNKNOWN_MODEL: u8 = 3;
/// An RPC command failed: server unreachable, rejection, protocol error.
const EXIT_RPC: u8 = 4;
/// `--recover` could not rebuild the fleet from the durable directory.
const EXIT_RECOVERY: u8 = 5;

fn model_by_name(name: &str, batch: Option<usize>) -> Option<ModelSpec> {
    // One registry serves the CLI and the RPC server.
    nnrt::models::by_name(name, batch)
}

fn usage_text() -> String {
    "usage: nnrt <compare|profile|grid|plan|trace> <model> [batch]\n       \
     nnrt serve [jobs] [nodes] [seed] [--backend <knl|gpu|cluster>] [--chaos <seed>] [--checkpoint-interval <steps>] [--profile-threads <n>] [--durable <dir>] [--flush-interval <secs>] [--recover] [--json]\n       \
     nnrt serve --listen <addr> [nodes] [seed] [--backend <knl|gpu|cluster>] [--hold] [--snapshot <path>] [--durable <dir>] [--recover] [--profile-threads <n>] [--max-connections <n>] [--pipeline-depth <n>] [--json]\n       \
     nnrt submit <addr> <model> [batch] [--steps n] [--priority p] [--weight w] [--name s] [--no-retry]\n       \
     nnrt status <addr> [job_id] | nnrt shutdown <addr> [--json]\n       \
     nnrt metrics <addr> | nnrt top <addr> [--once] [--interval <secs>]\n       \
     nnrt journal <dir> [--json]\n       \
     nnrt gpu | nnrt models | nnrt --help\n\
     models: resnet50, dcgan, inception, lstm, transformer"
        .to_string()
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(EXIT_USAGE)
}

/// Default profiling worker count: one per available hardware thread. Any
/// count produces byte-identical output, so the default leans parallel.
fn default_profile_threads() -> usize {
    nnrt::sched::ProfilerPool::available().threads()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "--help" | "-h" | "help" => {
            println!("{}", usage_text());
            ExitCode::SUCCESS
        }
        "models" => {
            for m in nnrt::models::paper_models() {
                println!(
                    "{:14} batch {:3}   {:5} ops, {:4} distinct keys, critical path {}",
                    m.name,
                    m.batch,
                    m.graph.len(),
                    m.graph.distinct_keys().len(),
                    m.graph.critical_path_len()
                );
            }
            ExitCode::SUCCESS
        }
        "gpu" => {
            let m = nnrt::gpu::GpuModel::p100();
            println!("P100 launch-config tuning (O(2n) independent-axis search):");
            for kind in nnrt::gpu::GpuOpKind::ALL {
                let k = nnrt::gpu::gpu_op(kind);
                let tuned = nnrt::gpu::tune_independent(&m, &k);
                let default = m.time(&k, nnrt::gpu::LaunchConfig::tf_default());
                println!(
                    "  {:22} default {:9.1} us -> tuned {:9.1} us ({} t/b, {} blocks, {} evals)",
                    kind.name(),
                    default * 1e6,
                    tuned.secs * 1e6,
                    tuned.config.threads_per_block,
                    tuned.config.num_blocks,
                    tuned.evaluations
                );
            }
            let subs: Vec<nnrt::gpu::Submission> = nnrt::gpu::GpuOpKind::ALL
                .iter()
                .map(|&k| nnrt::gpu::Submission {
                    kernel: nnrt::gpu::gpu_op(k),
                    config: nnrt::gpu::LaunchConfig::tf_default(),
                })
                .collect();
            let sched = nnrt::gpu::schedule_streams(&m, &subs);
            println!(
                "stream packing of the 5 ops: serial {:.1} us -> {:.1} us ({} waves)",
                sched.serial * 1e6,
                sched.makespan * 1e6,
                sched.waves.len()
            );
            ExitCode::SUCCESS
        }
        "serve" => {
            let mut positional = Vec::new();
            let mut chaos: Option<u64> = None;
            let mut checkpoint_interval: Option<u32> = None;
            let mut profile_threads: Option<usize> = None;
            let mut backend = nnrt::serve::NodeBackend::Knl;
            let mut json = false;
            let mut listen: Option<String> = None;
            let mut max_connections: Option<usize> = None;
            let mut pipeline_depth: Option<usize> = None;
            let mut hold = false;
            let mut snapshot: Option<String> = None;
            let mut durable: Option<String> = None;
            let mut flush_interval: Option<f64> = None;
            let mut events: Option<String> = None;
            let mut recover = false;
            let mut it = args.iter().skip(1);
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--backend" => {
                        match it.next().and_then(|s| nnrt::serve::NodeBackend::parse(s)) {
                            Some(b) => backend = b,
                            None => {
                                eprintln!("--backend needs `knl`, `gpu` or `cluster`");
                                return usage();
                            }
                        }
                    }
                    "--chaos" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(seed) => chaos = Some(seed),
                        None => {
                            eprintln!("--chaos needs a numeric seed");
                            return usage();
                        }
                    },
                    "--profile-threads" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => profile_threads = Some(n),
                        _ => {
                            eprintln!("--profile-threads needs a worker count >= 1");
                            return usage();
                        }
                    },
                    "--checkpoint-interval" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(steps) => checkpoint_interval = Some(steps),
                        None => {
                            eprintln!("--checkpoint-interval needs a step count");
                            return usage();
                        }
                    },
                    "--listen" => match it.next() {
                        Some(addr) => listen = Some(addr.clone()),
                        None => {
                            eprintln!("--listen needs an address (e.g. 127.0.0.1:0)");
                            return usage();
                        }
                    },
                    "--max-connections" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => max_connections = Some(n),
                        _ => {
                            eprintln!("--max-connections needs a connection count >= 1");
                            return usage();
                        }
                    },
                    "--pipeline-depth" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => pipeline_depth = Some(n),
                        _ => {
                            eprintln!("--pipeline-depth needs an in-flight request count >= 1");
                            return usage();
                        }
                    },
                    "--snapshot" => match it.next() {
                        Some(path) => snapshot = Some(path.clone()),
                        None => {
                            eprintln!("--snapshot needs a file path");
                            return usage();
                        }
                    },
                    "--durable" => match it.next() {
                        Some(dir) => durable = Some(dir.clone()),
                        None => {
                            eprintln!("--durable needs a directory path");
                            return usage();
                        }
                    },
                    "--flush-interval" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(secs) if secs > 0.0 => flush_interval = Some(secs),
                        _ => {
                            eprintln!("--flush-interval needs a positive number of seconds");
                            return usage();
                        }
                    },
                    "--events" => match it.next() {
                        Some(path) => events = Some(path.clone()),
                        None => {
                            eprintln!("--events needs a file path");
                            return usage();
                        }
                    },
                    "--recover" => recover = true,
                    "--hold" => hold = true,
                    "--json" => json = true,
                    other => positional.push(other.to_string()),
                }
            }
            if recover && durable.is_none() {
                eprintln!("--recover needs --durable <dir> to know where the journal lives");
                return usage();
            }
            if flush_interval.is_some() && durable.is_none() {
                eprintln!("--flush-interval only applies with --durable <dir>");
                return usage();
            }
            if recover && chaos.is_some() {
                eprintln!("--recover resumes a recorded run; it does not combine with --chaos");
                return usage();
            }
            let durability = durable.map(|dir| {
                let mut d = nnrt::serve::DurabilityConfig::new(std::path::PathBuf::from(dir));
                if let Some(secs) = flush_interval {
                    d.flush_interval_secs = secs;
                }
                d
            });
            if max_connections.is_some() && listen.is_none() {
                eprintln!("--max-connections only applies with --listen");
                return usage();
            }
            if pipeline_depth.is_some() && listen.is_none() {
                eprintln!("--pipeline-depth only applies with --listen");
                return usage();
            }
            if let Some(addr) = listen {
                if chaos.is_some() {
                    eprintln!("--chaos needs a known job mix; it does not combine with --listen");
                    return usage();
                }
                // In listen mode jobs arrive over the wire, so the
                // positionals shift down to [nodes] [seed].
                let nodes: u32 = positional
                    .first()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(2)
                    .max(1);
                let seed: u64 = positional
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0xF1EE7);
                return run_listen(
                    &addr,
                    nodes,
                    seed,
                    backend,
                    checkpoint_interval,
                    profile_threads,
                    max_connections,
                    pipeline_depth,
                    hold,
                    snapshot,
                    durability,
                    events,
                    recover,
                    json,
                );
            }
            let jobs: usize = positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10);
            let nodes: u32 = positional
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(2)
                .max(1);
            let seed: u64 = positional
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0xF1EE7);
            run_serve(
                jobs,
                nodes,
                seed,
                backend,
                chaos,
                checkpoint_interval,
                profile_threads,
                durability,
                events,
                recover,
                json,
            )
        }
        "journal" => run_journal(&args[1..]),
        "submit" => run_submit(&args[1..]),
        "status" => run_status(&args[1..]),
        "metrics" => run_metrics(&args[1..]),
        "top" => run_top(&args[1..]),
        "shutdown" => run_shutdown(&args[1..]),
        "compare" | "profile" | "grid" | "plan" | "trace" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let batch = args.get(2).and_then(|b| b.parse().ok());
            let Some(spec) = model_by_name(name, batch) else {
                eprintln!("unknown model '{name}'");
                eprintln!("{}", usage_text());
                return ExitCode::from(EXIT_UNKNOWN_MODEL);
            };
            run_model_command(cmd, &spec);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!("{}", usage_text());
            ExitCode::from(EXIT_UNKNOWN_COMMAND)
        }
    }
}

/// `nnrt serve`: a mixed workload of the five models over a fleet of KNL
/// nodes sharing one profile store. The first job of each model profiles
/// cold; every later job of that model warm-starts from the store. With
/// `--chaos`, a seeded fault plan (sized to the workload via a fault-free
/// dry run) crashes a node, slows another, and corrupts the store mid-run;
/// the report then shows retries, checkpoint restores, and degraded keys.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    jobs: usize,
    nodes: u32,
    seed: u64,
    backend: nnrt::serve::NodeBackend,
    chaos: Option<u64>,
    checkpoint_interval: Option<u32>,
    profile_threads: Option<usize>,
    durability: Option<nnrt::serve::DurabilityConfig>,
    events: Option<String>,
    recover: bool,
    json: bool,
) -> ExitCode {
    use nnrt::serve::{FaultPlan, Fleet, FleetConfig, JobSpec};

    let durable_dir = durability.as_ref().map(|d| d.dir.clone());

    // Small batches keep the simulated fleet quick while preserving the
    // profile-sharing structure (keys depend on shapes, not step counts).
    let workload = [
        ("resnet50", resnet50(16)),
        ("dcgan", dcgan(16)),
        ("inception", inception_v3(4)),
        ("lstm", lstm(8)),
        ("transformer", nnrt::models::transformer(4)),
    ];
    let config = FleetConfig {
        node_count: nodes,
        seed,
        checkpoint_interval: checkpoint_interval.unwrap_or(1),
        profile_threads: profile_threads.unwrap_or_else(default_profile_threads),
        backend,
        durability,
        ..FleetConfig::default()
    };
    let submit_all = |fleet: &mut Fleet, quiet: bool| {
        for i in 0..jobs {
            let (model, spec) = &workload[i % workload.len()];
            let job = JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: spec.graph.clone(),
                steps: 3,
                priority: (i % 3) as u8,
                weight: 1.0 + (i % 4) as f64,
            };
            if let Err(e) = fleet.submit(job) {
                if !quiet {
                    eprintln!("rejected {model}-{i}: {e}");
                }
            }
        }
    };
    if recover {
        // Resume the recorded run: jobs come back from the journal, not
        // from a fresh submission pass.
        let (mut fleet, recovery) = match Fleet::recover(config) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("recovery failed: {e}");
                return ExitCode::from(EXIT_RECOVERY);
            }
        };
        eprint!("{}", recovery.render());
        if let Some(dir) = &durable_dir {
            let path = dir.join("recovery.json");
            if let Err(e) = nnrt::serve::write_atomic(&path, recovery.to_json().as_bytes()) {
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
        let report = fleet.run();
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        if let Some(path) = &events {
            write_sim_events(path, &fleet.obs());
        }
        return ExitCode::SUCCESS;
    }
    // Progress goes to stderr so `--json` (and scripted) stdout stays a
    // single parseable document.
    eprintln!(
        "serving {jobs} jobs over {nodes} {} node(s), seed {seed:#x} \
         (mixed workload: {})",
        backend.name(),
        workload
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join("+")
    );
    let plan = chaos.map(|chaos_seed| {
        // Size the fault plan to the workload: a fault-free dry run tells
        // us the makespan, so the seeded events land mid-run. The dry run
        // must not touch the durable directory.
        let mut dry_config = config.clone();
        dry_config.durability = None;
        let mut dry = Fleet::new(dry_config);
        submit_all(&mut dry, true);
        let horizon = dry.run().makespan_secs;
        let plan = FaultPlan::from_seed(chaos_seed, nodes, horizon);
        eprintln!(
            "chaos seed {chaos_seed:#x}: {} events over a {horizon:.3}s horizon, \
             profiling budget {:?}",
            plan.events.len(),
            plan.profiling_step_budget
        );
        plan
    });
    let mut fleet = Fleet::new(config);
    if let Some(plan) = plan {
        fleet.set_fault_plan(plan);
    }
    submit_all(&mut fleet, false);
    let report = fleet.run();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if let Some(path) = &events {
        write_sim_events(path, &fleet.obs());
    }
    ExitCode::SUCCESS
}

/// Writes the simulated-clock event stream as JSONL — the determinism
/// artifact CI byte-compares across seed-identical runs.
fn write_sim_events(path: &str, obs: &nnrt::obs::Obs) {
    let sim = Some(nnrt::obs::Clock::Sim);
    let jsonl = obs.events_jsonl(sim);
    match std::fs::write(path, &jsonl) {
        Ok(()) => eprintln!(
            "wrote {} sim event(s) to {path}",
            obs.events_snapshot(sim).len()
        ),
        Err(e) => eprintln!("cannot write events to {path}: {e}"),
    }
}

/// `nnrt journal <dir> [--json]`: inspect a durable directory's write-ahead
/// journal without touching it — per-record-kind counts, torn-tail status,
/// and discarded byte count. A missing journal reads as zero records (exit
/// 0), so scripts can poll a directory a server is still warming up.
fn run_journal(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut dir: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => dir = Some(other.to_string()),
        }
    }
    let Some(dir) = dir else {
        eprintln!("journal needs a durable directory path");
        return usage();
    };
    let path = std::path::Path::new(&dir).join(nnrt::serve::JOURNAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::from(EXIT_RECOVERY);
        }
    };
    let replay = nnrt::serve::replay(&bytes);
    // Every tag appears in the output, zero or not, so pollers can key on
    // `complete` before the first completion lands.
    const TAGS: [&str; 8] = [
        "header",
        "admit",
        "place",
        "store_insert",
        "checkpoint",
        "evict",
        "retry",
        "complete",
    ];
    let mut counts = std::collections::BTreeMap::new();
    for tag in TAGS {
        counts.insert(tag, 0usize);
    }
    for record in &replay.records {
        *counts.entry(record.tag()).or_insert(0) += 1;
    }
    if json {
        let fields: Vec<String> = TAGS
            .iter()
            .map(|tag| format!("\"{tag}\":{}", counts[tag]))
            .collect();
        println!(
            "{{\"records\":{},\"counts\":{{{}}},\"torn\":{},\"discarded_bytes\":{}}}",
            replay.records.len(),
            fields.join(","),
            replay.torn.is_some(),
            replay.discarded_bytes
        );
    } else {
        println!("{}: {} record(s)", path.display(), replay.records.len());
        for tag in TAGS {
            println!("  {tag:13} {}", counts[tag]);
        }
        match &replay.torn {
            Some(e) => println!(
                "  torn tail: {} byte(s) discarded ({e})",
                replay.discarded_bytes
            ),
            None => println!("  tail clean"),
        }
    }
    ExitCode::SUCCESS
}

/// `nnrt serve --listen`: the same fleet behind the nnrt-rpc TCP front-end.
/// Prints `listening on <addr>` first (flushed, so scripts can capture an
/// ephemeral port), then blocks until a client sends `Shutdown` and prints
/// the final report.
#[allow(clippy::too_many_arguments)]
fn run_listen(
    addr: &str,
    nodes: u32,
    seed: u64,
    backend: nnrt::serve::NodeBackend,
    checkpoint_interval: Option<u32>,
    profile_threads: Option<usize>,
    max_connections: Option<usize>,
    pipeline_depth: Option<usize>,
    hold: bool,
    snapshot: Option<String>,
    durability: Option<nnrt::serve::DurabilityConfig>,
    events: Option<String>,
    recover: bool,
    json: bool,
) -> ExitCode {
    use nnrt::serve::{Fleet, FleetConfig};
    use std::io::Write as _;

    let durable_dir = durability.as_ref().map(|d| d.dir.clone());
    let config = ServerConfig {
        fleet: FleetConfig {
            node_count: nodes,
            seed,
            checkpoint_interval: checkpoint_interval.unwrap_or(1),
            profile_threads: profile_threads.unwrap_or_else(default_profile_threads),
            backend,
            durability,
            ..FleetConfig::default()
        },
        drain: if hold {
            DrainPolicy::OnShutdown
        } else {
            DrainPolicy::Eager
        },
        snapshot_path: snapshot.map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    let config = ServerConfig {
        max_connections: max_connections.unwrap_or(config.max_connections),
        pipeline_depth: pipeline_depth.unwrap_or(config.pipeline_depth),
        ..config
    };
    // Build the fleet first (rather than letting the server build it) so a
    // handle on its observability state survives the move behind the socket
    // — `--events` drains it after shutdown.
    let (bound, obs) = if recover {
        // Rebuild the fleet from the durable directory, then put it behind
        // the socket; recovered jobs drain alongside new submissions.
        match Fleet::recover(config.fleet.clone()) {
            Ok((fleet, recovery)) => {
                eprint!("{}", recovery.render());
                if let Some(dir) = &durable_dir {
                    let path = dir.join("recovery.json");
                    if let Err(e) = nnrt::serve::write_atomic(&path, recovery.to_json().as_bytes())
                    {
                        eprintln!("cannot write {}: {e}", path.display());
                    }
                }
                let obs = fleet.obs();
                (FleetServer::bind_with_fleet(addr, fleet, config), obs)
            }
            Err(e) => {
                eprintln!("recovery failed: {e}");
                return ExitCode::from(EXIT_RECOVERY);
            }
        }
    } else {
        let fleet = Fleet::new(config.fleet.clone());
        let obs = fleet.obs();
        (FleetServer::bind_with_fleet(addr, fleet, config), obs)
    };
    let server = match bound {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            return ExitCode::from(EXIT_RPC);
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "serving a {nodes}-node {} fleet, seed {seed:#x} ({} drain); \
         submit with `nnrt submit {} <model>`, stop with `nnrt shutdown {}`",
        backend.name(),
        if hold { "on-shutdown" } else { "eager" },
        server.local_addr(),
        server.local_addr()
    );
    match server.join() {
        Some(report) => {
            if json {
                println!("{report}");
            } else {
                println!("{}", summarize_report(&report));
            }
            if let Some(path) = &events {
                write_sim_events(path, &obs);
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("service thread died without a final report");
            ExitCode::from(EXIT_RPC)
        }
    }
}

/// Maps a client-side failure to an exit code, reporting it on stderr.
fn rpc_fail(what: &str, e: &ClientError) -> ExitCode {
    eprintln!("{what}: {e}");
    match e {
        ClientError::Rejected(frame) if frame.kind == ErrorKind::UnknownModel => {
            ExitCode::from(EXIT_UNKNOWN_MODEL)
        }
        _ => ExitCode::from(EXIT_RPC),
    }
}

/// `nnrt submit <addr> <model> [batch] [--steps n] [--priority p]
/// [--weight w] [--name s] [--no-retry]`.
fn run_submit(args: &[String]) -> ExitCode {
    let (Some(addr), Some(model)) = (args.first(), args.get(1)) else {
        eprintln!("submit needs <addr> <model>");
        return usage();
    };
    // Fail fast on typos without a round-trip; the server re-validates.
    if model_by_name(model, None).is_none() {
        eprintln!("unknown model '{model}'");
        return ExitCode::from(EXIT_UNKNOWN_MODEL);
    }
    let mut spec = SubmitSpec::new(model);
    let mut retry = true;
    let mut it = args.iter().skip(2);
    while let Some(arg) = it.next() {
        let mut flag = |name: &str| -> Option<&String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--steps" => match flag("--steps").and_then(|s| s.parse().ok()) {
                Some(steps) => spec.steps = steps,
                None => return usage(),
            },
            "--priority" => match flag("--priority").and_then(|s| s.parse().ok()) {
                Some(p) => spec.priority = p,
                None => return usage(),
            },
            "--weight" => match flag("--weight").and_then(|s| s.parse().ok()) {
                Some(w) => spec.weight = w,
                None => return usage(),
            },
            "--name" => match flag("--name") {
                Some(name) => spec.name = name.clone(),
                None => return usage(),
            },
            "--no-retry" => retry = false,
            other => match other.parse() {
                Ok(batch) => spec.batch = batch,
                Err(_) => {
                    eprintln!("unexpected submit argument '{other}'");
                    return usage();
                }
            },
        }
    }
    let mut client = match RpcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return rpc_fail("connect", &e),
    };
    let submitted = if retry {
        client.submit_with_retry(&spec, &RetryPolicy::default())
    } else {
        client.submit(&spec)
    };
    match submitted {
        Ok(job_id) => {
            println!("submitted job {job_id}");
            ExitCode::SUCCESS
        }
        Err(e) => rpc_fail("submit", &e),
    }
}

/// `nnrt status <addr> [job_id]`: one job, or all of them.
fn run_status(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        eprintln!("status needs <addr>");
        return usage();
    };
    let mut client = match RpcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return rpc_fail("connect", &e),
    };
    let render = |s: &nnrt::serve::JobStatus| {
        format!(
            "{:>4}  {:16} {:12} {:9} {:>5}/{:<5} {}",
            s.id,
            s.name,
            s.model,
            format!("{:?}", s.phase).to_lowercase(),
            s.steps_done,
            s.steps,
            s.node.map_or("-".to_string(), |n| format!("node {n}"))
        )
    };
    match args.get(1).map(|s| s.parse::<u64>()) {
        Some(Ok(job_id)) => match client.status(job_id) {
            Ok(status) => {
                println!("{}", render(&status));
                ExitCode::SUCCESS
            }
            Err(e) => rpc_fail("status", &e),
        },
        Some(Err(_)) => {
            eprintln!("job id must be a number");
            usage()
        }
        None => match client.list_jobs() {
            Ok(jobs) => {
                println!(
                    "{:>4}  {:16} {:12} {:9} {:>5}/{:<5} node",
                    "id", "name", "model", "phase", "done", "steps"
                );
                for status in &jobs {
                    println!("{}", render(status));
                }
                ExitCode::SUCCESS
            }
            Err(e) => rpc_fail("status", &e),
        },
    }
}

/// `nnrt metrics <addr>`: scrape a listening server's metrics and print
/// the raw Prometheus-style text exposition (both clock domains).
fn run_metrics(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        eprintln!("metrics needs <addr>");
        return usage();
    };
    let mut client = match RpcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return rpc_fail("connect", &e),
    };
    match client.metrics() {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => rpc_fail("metrics", &e),
    }
}

/// `nnrt top <addr> [--once] [--interval <secs>]`: a periodic one-screen
/// live view of a listening fleet, rendered from its scraped exposition.
fn run_top(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        eprintln!("top needs <addr>");
        return usage();
    };
    let mut once = false;
    let mut interval = 2.0f64;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) if secs > 0.0 => interval = secs,
                _ => {
                    eprintln!("--interval needs a positive number of seconds");
                    return usage();
                }
            },
            other => {
                eprintln!("unexpected top argument '{other}'");
                return usage();
            }
        }
    }
    let mut client = match RpcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return rpc_fail("connect", &e),
    };
    loop {
        let text = match client.metrics() {
            Ok(text) => text,
            Err(e) => return rpc_fail("metrics", &e),
        };
        let exp = match nnrt::obs::parse_exposition(&text) {
            Ok(exp) => exp,
            Err(e) => {
                eprintln!("malformed exposition from {addr}: {e}");
                return ExitCode::from(EXIT_RPC);
            }
        };
        if !once {
            // Clear screen and home the cursor, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(addr, &exp));
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// One screen of fleet state from a parsed exposition.
fn render_top(addr: &str, exp: &nnrt::obs::Exposition) -> String {
    use std::fmt::Write as _;
    let v = |name: &str| exp.value(name, &[]).unwrap_or(0.0);
    let phase = |p: &str| exp.value("nnrt_jobs", &[("phase", p)]).unwrap_or(0.0) as u64;
    let mut out = String::new();
    let _ = writeln!(out, "nnrt top — {addr}");
    let _ = writeln!(
        out,
        "jobs    queued {}  running {}  retrying {}  completed {}   queue depth {}",
        phase("queued"),
        phase("running"),
        phase("retrying"),
        phase("completed"),
        v("nnrt_queue_depth") as u64
    );
    for s in exp.all("nnrt_node_utilization", &[]) {
        let node = s.label("node").unwrap_or("?");
        let resident = exp
            .value("nnrt_node_resident_jobs", &[("node", node)])
            .unwrap_or(0.0) as u64;
        let clock = exp
            .value("nnrt_node_clock_seconds", &[("node", node)])
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "node {node:>2}  util {:5.1}%  resident {resident}  clock {clock:.1}s",
            s.value * 100.0
        );
    }
    let _ = writeln!(
        out,
        "store   {} entries  hit rate {:.1}%  ({} hits / {} misses, {} evictions)",
        v("nnrt_store_entries") as u64,
        v("nnrt_store_hit_rate") * 100.0,
        v("nnrt_store_hits") as u64,
        v("nnrt_store_misses") as u64,
        v("nnrt_store_evictions") as u64
    );
    let durability = if v("nnrt_durability_disabled") > 0.0 {
        "DEGRADED"
    } else {
        "ok"
    };
    let _ = writeln!(
        out,
        "faults  retries {}  evictions {}  injected {}  durability {durability}",
        v("nnrt_retries_total") as u64,
        v("nnrt_evictions_total") as u64,
        exp.sum("nnrt_faults_injected_total", &[]) as u64
    );
    let total = exp.sum("nnrt_rpc_requests_total", &[]) as u64;
    let ok = exp.sum("nnrt_rpc_requests_total", &[("outcome", "ok")]) as u64;
    let _ = writeln!(
        out,
        "rpc     {total} request(s) ({ok} ok / {} not)",
        total - ok
    );
    out
}

/// `nnrt shutdown <addr> [--json]`: drain the server, print its report.
fn run_shutdown(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        eprintln!("shutdown needs <addr>");
        return usage();
    };
    let json = args.iter().any(|a| a == "--json");
    let mut client = match RpcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return rpc_fail("connect", &e),
    };
    match client.shutdown() {
        Ok(report) => {
            if json {
                println!("{report}");
            } else {
                println!("{}", summarize_report(&report));
            }
            ExitCode::SUCCESS
        }
        Err(e) => rpc_fail("shutdown", &e),
    }
}

/// A one-paragraph human summary of a [`nnrt::serve::FleetReport`] JSON
/// document (the report type is serialize-only, so this reads the fields
/// back through [`serde_json::Value`]).
fn summarize_report(report: &str) -> String {
    let Ok(v) = serde_json::from_str::<serde_json::Value>(report) else {
        return report.to_string();
    };
    let num = |key: &str| v.get(key).and_then(|x| x.as_f64()).unwrap_or(f64::NAN);
    let jobs = v.get("jobs").and_then(|j| j.as_array()).map_or(0, Vec::len);
    format!(
        "fleet drained: {jobs} job(s), makespan {:.3}s, {:.2} steps/s; \
         store {} hits / {} misses, {} entries; {} rejected",
        num("makespan_secs"),
        num("steps_per_sec"),
        num("store_hits") as u64,
        num("store_misses") as u64,
        num("store_entries") as u64,
        num("rejected") as u64,
    )
}

fn run_model_command(cmd: &str, spec: &ModelSpec) {
    let catalog = OpCatalog::new(&spec.graph);
    let cost = KnlCostModel::knl();
    match cmd {
        "compare" => {
            let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(
                &spec.graph,
                &catalog,
                &cost,
            );
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            let ours = rt.run_step(&spec.graph);
            println!(
                "{} (batch {}): {} ops",
                spec.name,
                spec.batch,
                spec.graph.len()
            );
            println!("  recommendation (1, 68): {:8.1} ms", rec.total_secs * 1e3);
            println!(
                "  strategies 1-4:         {:8.1} ms   ({:.2}x)",
                ours.total_secs * 1e3,
                rec.total_secs / ours.total_secs
            );
            println!("  top kinds (ours):");
            for &(kind, secs, n) in ours.top_kinds(5) {
                println!("    {:24} {:8.1} ms  x{n}", kind.to_string(), secs * 1e3);
            }
        }
        "profile" => {
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            println!(
                "{}: profiled {} keys in ~{} steps ({} measurements)",
                spec.name,
                catalog.keys().len(),
                rt.model().profiling_steps,
                rt.model().measurements
            );
            let mut rows: Vec<_> = catalog
                .keys()
                .iter()
                .filter_map(|key| rt.model().best(key).map(|b| (key.clone(), b)))
                .collect();
            rows.sort_by(|a, b| b.1 .2.partial_cmp(&a.1 .2).unwrap());
            for (key, (threads, mode, secs)) in rows.iter().take(15) {
                println!(
                    "  {:24} {:18} -> {:2} threads ({:?}), {:9.3} ms",
                    key.0.to_string(),
                    key.1.to_string(),
                    threads,
                    mode,
                    secs * 1e3
                );
            }
            if rows.len() > 15 {
                println!("  ... and {} more keys", rows.len() - 15);
            }
        }
        "grid" => {
            let rec = TfExecutor::new(TfExecutorConfig::recommendation())
                .run_step(&spec.graph, &catalog, &cost)
                .total_secs;
            println!("{}: speedup over (1, 68) = {:.1} ms", spec.name, rec * 1e3);
            println!("{:>6} {:>6} {:>9}", "inter", "intra", "speedup");
            for inter in [1u32, 2, 4] {
                for intra in [16u32, 34, 68, 136] {
                    let t = TfExecutor::new(TfExecutorConfig {
                        inter_op: inter,
                        intra_op: intra,
                    })
                    .run_step(&spec.graph, &catalog, &cost)
                    .total_secs;
                    println!("{inter:>6} {intra:>6} {:>8.2}x", rec / t);
                }
            }
        }
        "trace" => {
            let mut rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            rt.record_trace(true);
            let report = rt.run_step(&spec.graph);
            let json = nnrt::sched::export_chrome_trace(&spec.graph, &report.timings);
            let path = format!("{}_trace.json", spec.name.to_lowercase().replace('-', "_"));
            std::fs::write(&path, json).expect("write trace file");
            println!(
                "{}: wrote {path} ({} ops, step {:.1} ms) — open in chrome://tracing or Perfetto",
                spec.name,
                report.timings.len(),
                report.total_secs * 1e3
            );
        }
        "plan" => {
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            println!(
                "{}: Strategy 1+2 thread plan (per kind, largest instance):",
                spec.name
            );
            let mut seen = std::collections::BTreeSet::new();
            for key in catalog.keys() {
                if !key.0.is_tunable() || !seen.insert(key.0) {
                    continue;
                }
                let (threads, mode) = rt.plan().threads_for(key);
                println!(
                    "  {:24} -> {threads:2} threads ({mode:?})",
                    key.0.to_string()
                );
            }
            println!("  (non-MKL kinds stay at the framework default of 68)");
        }
        _ => unreachable!(),
    }
}
