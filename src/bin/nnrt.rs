//! `nnrt` — command-line front end to the runtime.
//!
//! ```text
//! nnrt compare <model> [batch]   one step: recommendation vs strategies 1-4
//! nnrt profile <model> [batch]   hill-climb profile: per-key optima
//! nnrt grid <model> [batch]      uniform (inter, intra) grid sweep
//! nnrt plan <model> [batch]      the thread plan Strategies 1+2 install
//! nnrt trace <model> [batch]     write a chrome://tracing JSON of one step
//! nnrt serve [jobs] [nodes] [seed] [--chaos <seed>]
//!            [--checkpoint-interval <steps>] [--json]
//!                                multi-tenant fleet with a shared profile
//!                                store; prints the fleet report. `--chaos`
//!                                arms a seeded fault plan (node crash,
//!                                straggler, store corruption, profiling
//!                                budget) sized to the workload by a
//!                                fault-free dry run; `--json` prints the
//!                                report as JSON instead of text
//! nnrt gpu                       Section VII launch-config tuning + streams
//! nnrt models                    list the built-in models
//! ```
//!
//! Models: `resnet50` (batch 64), `dcgan` (64), `inception` (16), `lstm` (20),
//! and beyond the paper: `transformer` (8).
//!
//! Exit codes: 0 success, 1 usage, 2 unknown command, 3 unknown model.

use nnrt::prelude::*;
use nnrt::sched::OpCatalog;
use std::process::ExitCode;

/// Usage or missing-argument error.
const EXIT_USAGE: u8 = 1;
/// The first argument names no known subcommand.
const EXIT_UNKNOWN_COMMAND: u8 = 2;
/// A model argument names no known model.
const EXIT_UNKNOWN_MODEL: u8 = 3;

fn model_by_name(name: &str, batch: Option<usize>) -> Option<ModelSpec> {
    let spec = match name {
        "resnet50" | "resnet-50" => resnet50(batch.unwrap_or(64)),
        "dcgan" => dcgan(batch.unwrap_or(64)),
        "inception" | "inception-v3" | "inception_v3" => inception_v3(batch.unwrap_or(16)),
        "lstm" => lstm(batch.unwrap_or(20)),
        "transformer" | "bert" => nnrt::models::transformer(batch.unwrap_or(8)),
        _ => return None,
    };
    Some(spec)
}

fn usage_text() -> String {
    "usage: nnrt <compare|profile|grid|plan|trace> <model> [batch]\n       \
     nnrt serve [jobs] [nodes] [seed] [--chaos <seed>] [--checkpoint-interval <steps>] [--json]\n       \
     nnrt gpu | nnrt models | nnrt --help\n\
     models: resnet50, dcgan, inception, lstm, transformer"
        .to_string()
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "--help" | "-h" | "help" => {
            println!("{}", usage_text());
            ExitCode::SUCCESS
        }
        "models" => {
            for m in nnrt::models::paper_models() {
                println!(
                    "{:14} batch {:3}   {:5} ops, {:4} distinct keys, critical path {}",
                    m.name,
                    m.batch,
                    m.graph.len(),
                    m.graph.distinct_keys().len(),
                    m.graph.critical_path_len()
                );
            }
            ExitCode::SUCCESS
        }
        "gpu" => {
            let m = nnrt::gpu::GpuModel::p100();
            println!("P100 launch-config tuning (O(2n) independent-axis search):");
            for kind in nnrt::gpu::GpuOpKind::ALL {
                let k = nnrt::gpu::gpu_op(kind);
                let tuned = nnrt::gpu::tune_independent(&m, &k);
                let default = m.time(&k, nnrt::gpu::LaunchConfig::tf_default());
                println!(
                    "  {:22} default {:9.1} us -> tuned {:9.1} us ({} t/b, {} blocks, {} evals)",
                    kind.name(),
                    default * 1e6,
                    tuned.secs * 1e6,
                    tuned.config.threads_per_block,
                    tuned.config.num_blocks,
                    tuned.evaluations
                );
            }
            let subs: Vec<nnrt::gpu::Submission> = nnrt::gpu::GpuOpKind::ALL
                .iter()
                .map(|&k| nnrt::gpu::Submission {
                    kernel: nnrt::gpu::gpu_op(k),
                    config: nnrt::gpu::LaunchConfig::tf_default(),
                })
                .collect();
            let sched = nnrt::gpu::schedule_streams(&m, &subs);
            println!(
                "stream packing of the 5 ops: serial {:.1} us -> {:.1} us ({} waves)",
                sched.serial * 1e6,
                sched.makespan * 1e6,
                sched.waves.len()
            );
            ExitCode::SUCCESS
        }
        "serve" => {
            let mut positional = Vec::new();
            let mut chaos: Option<u64> = None;
            let mut checkpoint_interval: Option<u32> = None;
            let mut json = false;
            let mut it = args.iter().skip(1);
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--chaos" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(seed) => chaos = Some(seed),
                        None => {
                            eprintln!("--chaos needs a numeric seed");
                            return usage();
                        }
                    },
                    "--checkpoint-interval" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(steps) => checkpoint_interval = Some(steps),
                        None => {
                            eprintln!("--checkpoint-interval needs a step count");
                            return usage();
                        }
                    },
                    "--json" => json = true,
                    other => positional.push(other.to_string()),
                }
            }
            let jobs: usize = positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10);
            let nodes: u32 = positional
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(2)
                .max(1);
            let seed: u64 = positional
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0xF1EE7);
            run_serve(jobs, nodes, seed, chaos, checkpoint_interval, json);
            ExitCode::SUCCESS
        }
        "compare" | "profile" | "grid" | "plan" | "trace" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let batch = args.get(2).and_then(|b| b.parse().ok());
            let Some(spec) = model_by_name(name, batch) else {
                eprintln!("unknown model '{name}'");
                eprintln!("{}", usage_text());
                return ExitCode::from(EXIT_UNKNOWN_MODEL);
            };
            run_model_command(cmd, &spec);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!("{}", usage_text());
            ExitCode::from(EXIT_UNKNOWN_COMMAND)
        }
    }
}

/// `nnrt serve`: a mixed workload of the five models over a fleet of KNL
/// nodes sharing one profile store. The first job of each model profiles
/// cold; every later job of that model warm-starts from the store. With
/// `--chaos`, a seeded fault plan (sized to the workload via a fault-free
/// dry run) crashes a node, slows another, and corrupts the store mid-run;
/// the report then shows retries, checkpoint restores, and degraded keys.
fn run_serve(
    jobs: usize,
    nodes: u32,
    seed: u64,
    chaos: Option<u64>,
    checkpoint_interval: Option<u32>,
    json: bool,
) {
    use nnrt::serve::{FaultPlan, Fleet, FleetConfig, JobSpec};

    // Small batches keep the simulated fleet quick while preserving the
    // profile-sharing structure (keys depend on shapes, not step counts).
    let workload = [
        ("resnet50", resnet50(16)),
        ("dcgan", dcgan(16)),
        ("inception", inception_v3(4)),
        ("lstm", lstm(8)),
        ("transformer", nnrt::models::transformer(4)),
    ];
    let config = FleetConfig {
        node_count: nodes,
        seed,
        checkpoint_interval: checkpoint_interval.unwrap_or(1),
        ..FleetConfig::default()
    };
    let submit_all = |fleet: &mut Fleet, quiet: bool| {
        for i in 0..jobs {
            let (model, spec) = &workload[i % workload.len()];
            let job = JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: spec.graph.clone(),
                steps: 3,
                priority: (i % 3) as u8,
                weight: 1.0 + (i % 4) as f64,
            };
            if let Err(e) = fleet.submit(job) {
                if !quiet {
                    eprintln!("rejected {model}-{i}: {e}");
                }
            }
        }
    };
    if !json {
        println!(
            "serving {jobs} jobs over {nodes} node(s), seed {seed:#x} \
             (mixed workload: {})",
            workload
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join("+")
        );
    }
    let plan = chaos.map(|chaos_seed| {
        // Size the fault plan to the workload: a fault-free dry run tells
        // us the makespan, so the seeded events land mid-run.
        let mut dry = Fleet::new(config);
        submit_all(&mut dry, true);
        let horizon = dry.run().makespan_secs;
        let plan = FaultPlan::from_seed(chaos_seed, nodes, horizon);
        if !json {
            println!(
                "chaos seed {chaos_seed:#x}: {} events over a {horizon:.3}s horizon, \
                 profiling budget {:?}",
                plan.events.len(),
                plan.profiling_step_budget
            );
        }
        plan
    });
    let mut fleet = Fleet::new(config);
    if let Some(plan) = plan {
        fleet.set_fault_plan(plan);
    }
    submit_all(&mut fleet, false);
    let report = fleet.run();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
}

fn run_model_command(cmd: &str, spec: &ModelSpec) {
    let catalog = OpCatalog::new(&spec.graph);
    let cost = KnlCostModel::knl();
    match cmd {
        "compare" => {
            let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(
                &spec.graph,
                &catalog,
                &cost,
            );
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            let ours = rt.run_step(&spec.graph);
            println!(
                "{} (batch {}): {} ops",
                spec.name,
                spec.batch,
                spec.graph.len()
            );
            println!("  recommendation (1, 68): {:8.1} ms", rec.total_secs * 1e3);
            println!(
                "  strategies 1-4:         {:8.1} ms   ({:.2}x)",
                ours.total_secs * 1e3,
                rec.total_secs / ours.total_secs
            );
            println!("  top kinds (ours):");
            for &(kind, secs, n) in ours.top_kinds(5) {
                println!("    {:24} {:8.1} ms  x{n}", kind.to_string(), secs * 1e3);
            }
        }
        "profile" => {
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            println!(
                "{}: profiled {} keys in ~{} steps ({} measurements)",
                spec.name,
                catalog.keys().len(),
                rt.model().profiling_steps,
                rt.model().measurements
            );
            let mut rows: Vec<_> = catalog
                .keys()
                .iter()
                .filter_map(|key| rt.model().best(key).map(|b| (key.clone(), b)))
                .collect();
            rows.sort_by(|a, b| b.1 .2.partial_cmp(&a.1 .2).unwrap());
            for (key, (threads, mode, secs)) in rows.iter().take(15) {
                println!(
                    "  {:24} {:18} -> {:2} threads ({:?}), {:9.3} ms",
                    key.0.to_string(),
                    key.1.to_string(),
                    threads,
                    mode,
                    secs * 1e3
                );
            }
            if rows.len() > 15 {
                println!("  ... and {} more keys", rows.len() - 15);
            }
        }
        "grid" => {
            let rec = TfExecutor::new(TfExecutorConfig::recommendation())
                .run_step(&spec.graph, &catalog, &cost)
                .total_secs;
            println!("{}: speedup over (1, 68) = {:.1} ms", spec.name, rec * 1e3);
            println!("{:>6} {:>6} {:>9}", "inter", "intra", "speedup");
            for inter in [1u32, 2, 4] {
                for intra in [16u32, 34, 68, 136] {
                    let t = TfExecutor::new(TfExecutorConfig {
                        inter_op: inter,
                        intra_op: intra,
                    })
                    .run_step(&spec.graph, &catalog, &cost)
                    .total_secs;
                    println!("{inter:>6} {intra:>6} {:>8.2}x", rec / t);
                }
            }
        }
        "trace" => {
            let mut rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            rt.record_trace(true);
            let report = rt.run_step(&spec.graph);
            let json = nnrt::sched::export_chrome_trace(&spec.graph, &report.timings);
            let path = format!("{}_trace.json", spec.name.to_lowercase().replace('-', "_"));
            std::fs::write(&path, json).expect("write trace file");
            println!(
                "{}: wrote {path} ({} ops, step {:.1} ms) — open in chrome://tracing or Perfetto",
                spec.name,
                report.timings.len(),
                report.total_secs * 1e3
            );
        }
        "plan" => {
            let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
            println!(
                "{}: Strategy 1+2 thread plan (per kind, largest instance):",
                spec.name
            );
            let mut seen = std::collections::BTreeSet::new();
            for key in catalog.keys() {
                if !key.0.is_tunable() || !seen.insert(key.0) {
                    continue;
                }
                let (threads, mode) = rt.plan().threads_for(key);
                println!(
                    "  {:24} -> {threads:2} threads ({mode:?})",
                    key.0.to_string()
                );
            }
            println!("  (non-MKL kinds stay at the framework default of 68)");
        }
        _ => unreachable!(),
    }
}
