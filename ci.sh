#!/usr/bin/env bash
# Local CI: format check, lints, then the tier-1 and workspace test suites.
# Everything runs offline against the vendored path dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests =="
cargo test --workspace -q --offline

echo "CI green."
