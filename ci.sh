#!/usr/bin/env bash
# Local CI: format check, lints, then the tier-1 and workspace test suites.
# Everything runs offline against the vendored path dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests =="
cargo test --workspace -q --offline

echo "== chaos suite (pinned seed 99) =="
cargo test -q --offline --test chaos_fleet
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/nnrt serve 8 2 7 --chaos 99 --json > "$tmpdir/chaos-a.json"
./target/release/nnrt serve 8 2 7 --chaos 99 --json > "$tmpdir/chaos-b.json"
cmp "$tmpdir/chaos-a.json" "$tmpdir/chaos-b.json" \
  || { echo "chaos determinism violated: same seed produced different reports" >&2; exit 1; }
echo "chaos report deterministic (seed 99, byte-identical JSON)"

echo "== profile suite (parallel pipeline determinism) =="
cargo test -q --offline --test profile_parallel
./target/release/nnrt serve 6 2 7 --profile-threads 1 --json > "$tmpdir/profile-1w.json"
./target/release/nnrt serve 6 2 7 --profile-threads 4 --json > "$tmpdir/profile-4w.json"
cmp "$tmpdir/profile-1w.json" "$tmpdir/profile-4w.json" \
  || { echo "parallel profiling changed the report: 1 vs 4 workers differ" >&2; exit 1; }
echo "parallel profiling deterministic (1-worker vs 4-worker JSON byte-identical)"

echo "== gpu suite (stream runtime + fleet determinism) =="
cargo test -q --offline -p nnrt-gpu
./target/release/nnrt serve 4 2 7 --backend gpu --json > "$tmpdir/gpu-a.json"
./target/release/nnrt serve 4 2 7 --backend gpu --json > "$tmpdir/gpu-b.json"
cmp "$tmpdir/gpu-a.json" "$tmpdir/gpu-b.json" \
  || { echo "gpu fleet not deterministic: same seed produced different reports" >&2; exit 1; }
./target/release/nnrt serve 4 2 7 --backend gpu --profile-threads 4 --json > "$tmpdir/gpu-4w.json"
cmp "$tmpdir/gpu-a.json" "$tmpdir/gpu-4w.json" \
  || { echo "gpu profiling changed the report: 1 vs 4 workers differ" >&2; exit 1; }
echo "gpu fleet deterministic (seed 7 byte-identical; 1 vs 4 profile workers byte-identical)"

echo "== rpc suite (loopback smoke) =="
cargo test -q --offline --test rpc_loopback
./target/release/nnrt serve --listen 127.0.0.1:0 1 7 \
  > "$tmpdir/rpc-server.out" 2> "$tmpdir/rpc-server.err" &
rpc_server_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^listening on //p' "$tmpdir/rpc-server.out")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "rpc server never reported its address" >&2; exit 1; }
./target/release/nnrt submit "$addr" dcgan 4 --steps 2 > "$tmpdir/rpc-submit-0.out"
./target/release/nnrt submit "$addr" lstm 4 --steps 2 > "$tmpdir/rpc-submit-1.out"
grep -q "submitted job 0" "$tmpdir/rpc-submit-0.out"
grep -q "submitted job 1" "$tmpdir/rpc-submit-1.out"
./target/release/nnrt status "$addr" > "$tmpdir/rpc-status.out"
grep -q "dcgan-0" "$tmpdir/rpc-status.out"
grep -q "lstm-1" "$tmpdir/rpc-status.out"
./target/release/nnrt shutdown "$addr" --json > "$tmpdir/rpc-report.json"
python3 - "$tmpdir/rpc-report.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
jobs = {j["name"] for j in report["jobs"]}
assert jobs == {"dcgan-0", "lstm-1"}, f"unexpected job set: {jobs}"
assert report["rejected"] == 0, report["rejected"]
PY
wait "$rpc_server_pid" || { echo "rpc server exited non-zero" >&2; exit 1; }
echo "rpc loopback smoke ok (2 jobs, clean shutdown)"

echo "CI green."
