#!/usr/bin/env bash
# Local CI: format check, lints, then the tier-1 and workspace test suites.
# Everything runs offline against the vendored path dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests =="
cargo test --workspace -q --offline

echo "== chaos suite (pinned seed 99) =="
cargo test -q --offline --test chaos_fleet
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/nnrt serve 8 2 7 --chaos 99 --json > "$tmpdir/chaos-a.json"
./target/release/nnrt serve 8 2 7 --chaos 99 --json > "$tmpdir/chaos-b.json"
cmp "$tmpdir/chaos-a.json" "$tmpdir/chaos-b.json" \
  || { echo "chaos determinism violated: same seed produced different reports" >&2; exit 1; }
echo "chaos report deterministic (seed 99, byte-identical JSON)"

echo "== profile suite (parallel pipeline determinism) =="
cargo test -q --offline --test profile_parallel
./target/release/nnrt serve 6 2 7 --profile-threads 1 --json > "$tmpdir/profile-1w.json"
./target/release/nnrt serve 6 2 7 --profile-threads 4 --json > "$tmpdir/profile-4w.json"
cmp "$tmpdir/profile-1w.json" "$tmpdir/profile-4w.json" \
  || { echo "parallel profiling changed the report: 1 vs 4 workers differ" >&2; exit 1; }
echo "parallel profiling deterministic (1-worker vs 4-worker JSON byte-identical)"

echo "== gpu suite (stream runtime + fleet determinism) =="
cargo test -q --offline -p nnrt-gpu
./target/release/nnrt serve 4 2 7 --backend gpu --json > "$tmpdir/gpu-a.json"
./target/release/nnrt serve 4 2 7 --backend gpu --json > "$tmpdir/gpu-b.json"
cmp "$tmpdir/gpu-a.json" "$tmpdir/gpu-b.json" \
  || { echo "gpu fleet not deterministic: same seed produced different reports" >&2; exit 1; }
./target/release/nnrt serve 4 2 7 --backend gpu --profile-threads 4 --json > "$tmpdir/gpu-4w.json"
cmp "$tmpdir/gpu-a.json" "$tmpdir/gpu-4w.json" \
  || { echo "gpu profiling changed the report: 1 vs 4 workers differ" >&2; exit 1; }
echo "gpu fleet deterministic (seed 7 byte-identical; 1 vs 4 profile workers byte-identical)"

echo "== cluster suite (multi-node sim + fleet determinism) =="
cargo test -q --offline -p nnrt-cluster
./target/release/nnrt serve 4 2 7 --backend cluster --json > "$tmpdir/cluster-a.json"
./target/release/nnrt serve 4 2 7 --backend cluster --json > "$tmpdir/cluster-b.json"
cmp "$tmpdir/cluster-a.json" "$tmpdir/cluster-b.json" \
  || { echo "cluster fleet not deterministic: same seed produced different reports" >&2; exit 1; }
./target/release/nnrt serve 4 2 7 --backend cluster --profile-threads 4 --json > "$tmpdir/cluster-4w.json"
cmp "$tmpdir/cluster-a.json" "$tmpdir/cluster-4w.json" \
  || { echo "cluster profiling changed the report: 1 vs 4 workers differ" >&2; exit 1; }
grep -q "nnrt_cluster_overlap_fraction" "$tmpdir/cluster-a.json" \
  || { echo "cluster report is missing overlap-fraction telemetry" >&2; exit 1; }
echo "cluster fleet deterministic (seed 7 byte-identical; 1 vs 4 profile workers byte-identical)"

echo "== rpc suite (loopback smoke) =="
cargo test -q --offline --test rpc_loopback
./target/release/nnrt serve --listen 127.0.0.1:0 1 7 \
  > "$tmpdir/rpc-server.out" 2> "$tmpdir/rpc-server.err" &
rpc_server_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^listening on //p' "$tmpdir/rpc-server.out")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "rpc server never reported its address" >&2; exit 1; }
./target/release/nnrt submit "$addr" dcgan 4 --steps 2 > "$tmpdir/rpc-submit-0.out"
./target/release/nnrt submit "$addr" lstm 4 --steps 2 > "$tmpdir/rpc-submit-1.out"
grep -q "submitted job 0" "$tmpdir/rpc-submit-0.out"
grep -q "submitted job 1" "$tmpdir/rpc-submit-1.out"
./target/release/nnrt status "$addr" > "$tmpdir/rpc-status.out"
grep -q "dcgan-0" "$tmpdir/rpc-status.out"
grep -q "lstm-1" "$tmpdir/rpc-status.out"
./target/release/nnrt shutdown "$addr" --json > "$tmpdir/rpc-report.json"
python3 - "$tmpdir/rpc-report.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
jobs = {j["name"] for j in report["jobs"]}
assert jobs == {"dcgan-0", "lstm-1"}, f"unexpected job set: {jobs}"
assert report["rejected"] == 0, report["rejected"]
PY
wait "$rpc_server_pid" || { echo "rpc server exited non-zero" >&2; exit 1; }
echo "rpc loopback smoke ok (2 jobs, clean shutdown)"

cargo test -q --offline --test rpc_pipeline

# Wire byte-identity: the exact six-job mix `nnrt serve 6 2 7` runs in
# process, submitted over the socket into a held queue, must come back
# from the event-loop server's shutdown as the byte-identical report.
./target/release/nnrt serve --listen 127.0.0.1:0 2 7 --hold --profile-threads 1 \
  > "$tmpdir/rpc-hold-server.out" 2>/dev/null &
rpc_hold_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^listening on //p' "$tmpdir/rpc-hold-server.out")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "rpc hold server never reported its address" >&2; exit 1; }
./target/release/nnrt submit "$addr" resnet50 16 --steps 3 --priority 0 --weight 1 --name resnet50-0 > /dev/null
./target/release/nnrt submit "$addr" dcgan 16 --steps 3 --priority 1 --weight 2 --name dcgan-1 > /dev/null
./target/release/nnrt submit "$addr" inception 4 --steps 3 --priority 2 --weight 3 --name inception-2 > /dev/null
./target/release/nnrt submit "$addr" lstm 8 --steps 3 --priority 0 --weight 4 --name lstm-3 > /dev/null
./target/release/nnrt submit "$addr" transformer 4 --steps 3 --priority 1 --weight 1 --name transformer-4 > /dev/null
./target/release/nnrt submit "$addr" resnet50 16 --steps 3 --priority 2 --weight 2 --name resnet50-5 > /dev/null
./target/release/nnrt shutdown "$addr" --json > "$tmpdir/rpc-hold-report.json"
wait "$rpc_hold_pid" || { echo "rpc hold server exited non-zero" >&2; exit 1; }
cmp "$tmpdir/profile-1w.json" "$tmpdir/rpc-hold-report.json" \
  || { echo "event-loop server's wire report differs from the in-process run" >&2; exit 1; }
echo "rpc wire report byte-identical to in-process run (6 jobs, seed 7)"

# Sustained-load smoke: 256 pipelined connections against the release
# binary, exercising the --max-connections/--pipeline-depth flags. The
# server is killed afterwards — a graceful shutdown would simulate every
# queued one-step job, and the byte-identity check above already covers
# the shutdown path at a sane size.
./target/release/nnrt serve --listen 127.0.0.1:0 2 7 --max-connections 300 --pipeline-depth 8 \
  > "$tmpdir/rpc-load-server.out" 2>/dev/null &
rpc_load_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^listening on //p' "$tmpdir/rpc-load-server.out")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "rpc load server never reported its address" >&2; exit 1; }
cargo bench -q --offline -p nnrt-bench --bench rpc_load -- \
  --addr "$addr" --connections 256 --pipeline 2 --warmup 0.3 --duration 1 --no-record \
  > "$tmpdir/rpc-load.out" \
  || { echo "rpc load smoke failed" >&2; cat "$tmpdir/rpc-load.out" >&2; exit 1; }
kill -9 "$rpc_load_pid" 2>/dev/null || true
wait "$rpc_load_pid" 2>/dev/null || true
echo "rpc load smoke ok (256 pipelined connections, all answered)"

echo "== recovery suite (journal fuzz + kill -9 drill) =="
cargo test -q --offline --test durable_recovery
cargo test -q --offline --test decoder_fuzz

# Journaling must be observationally free: a fault-free durable run's
# report is byte-identical to one without --durable.
./target/release/nnrt serve 6 2 7 --json > "$tmpdir/plain.json"
./target/release/nnrt serve 6 2 7 --durable "$tmpdir/durable-free" --json > "$tmpdir/durable.json"
cmp "$tmpdir/plain.json" "$tmpdir/durable.json" \
  || { echo "journaling perturbed the report: --durable run differs" >&2; exit 1; }
echo "durable run byte-identical to in-memory run (6 jobs, seed 7)"

# The kill -9 drill: start a durable run, kill it dead mid-run, restart
# with --recover, and require the merged completion set to equal an
# uninterrupted run's — with zero lost profile-store keys. 40 jobs on a
# single profiling worker keeps the run in flight long enough (~1.7 s)
# for the journal poll below to catch a placement before completion.
drill="$tmpdir/drill"
./target/release/nnrt serve 40 2 7 --durable "$drill" --profile-threads 1 --json \
  > "$tmpdir/drill-run.json" 2> "$tmpdir/drill-run.err" &
drill_pid=$!
# Wait until the run is genuinely mid-flight: at least one job placed.
placed=0
for _ in $(seq 1 300); do
  placed="$(./target/release/nnrt journal "$drill" --json 2>/dev/null \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["counts"]["place"])' \
    || echo 0)"
  [ "$placed" -ge 1 ] && break
  kill -0 "$drill_pid" 2>/dev/null || break
  sleep 0.05
done
if kill -9 "$drill_pid" 2>/dev/null; then
  wait "$drill_pid" 2>/dev/null || true
  echo "killed durable run mid-flight (pid $drill_pid, $placed placement(s) journaled)"
else
  # The run can finish before the poll sees a placement on very fast
  # machines; recovery of a completed run is still a valid (if easier)
  # drill.
  wait "$drill_pid" 2>/dev/null || true
  echo "durable run finished before the kill; recovering a completed run"
fi
# Preserve the crashed state before recovery mutates the directory, for
# the determinism check below.
cp -r "$drill" "$tmpdir/drill-copy"
./target/release/nnrt serve 40 2 7 --durable "$drill" --profile-threads 1 --recover --json \
  > "$tmpdir/drill-recovered.json" 2> "$tmpdir/drill-recover.err"
./target/release/nnrt serve 40 2 7 --profile-threads 1 --json \
  > "$tmpdir/drill-uninterrupted.json" 2>/dev/null
python3 - "$drill/recovery.json" "$tmpdir/drill-recovered.json" "$tmpdir/drill-uninterrupted.json" <<'PY'
import json, sys
recovery = json.load(open(sys.argv[1]))
recovered = json.load(open(sys.argv[2]))
baseline = json.load(open(sys.argv[3]))

prior = {j["name"] for j in recovery["jobs_completed"]}
resumed = {j["name"] for j in recovered["jobs"]}
assert not (prior & resumed), f"jobs completed twice: {prior & resumed}"
merged = prior | resumed
expected = {j["name"] for j in baseline["jobs"]}
assert merged == expected, (
    f"lost jobs: {expected - merged}; invented jobs: {merged - expected}"
)

# Zero lost profile-store keys: every key the uninterrupted run measured
# is present after recovery (store entries counted in the final reports).
assert recovered["store_entries"] >= baseline["store_entries"], (
    f"lost store keys: {recovered['store_entries']} < {baseline['store_entries']}"
)

# RecoveryReport accounting is exact: the partition covers every admitted
# job exactly once.
n = len(recovery["jobs_resumed"]) + len(recovery["jobs_requeued"]) + len(prior)
assert n == len(expected), f"recovery accounted {n} jobs, admitted {len(expected)}"
print(
    f"kill -9 drill ok: {len(prior)} prior + {len(resumed)} recovered "
    f"= {len(expected)} jobs; {recovered['store_entries']} store keys "
    f">= {baseline['store_entries']}; "
    f"{len(recovery['jobs_resumed'])} resumed, "
    f"{len(recovery['jobs_requeued'])} re-queued, "
    f"torn tail: {recovery['torn_tail']}"
)
PY

# Recovery determinism: recovering the same crashed state twice is
# byte-identical (report and accounting).
./target/release/nnrt serve 40 2 7 --durable "$tmpdir/drill-copy" --profile-threads 1 --recover --json \
  > "$tmpdir/drill-recovered-b.json" 2>/dev/null
cmp "$tmpdir/drill-recovered.json" "$tmpdir/drill-recovered-b.json" \
  || { echo "recovery not deterministic: same journal produced different reports" >&2; exit 1; }
echo "recovery deterministic (same directory, byte-identical recovered report)"

echo "== obs suite (metrics scrape + event-stream determinism) =="
cargo test -q --offline --test obs_determinism

# Event-stream determinism: two seed-identical runs write byte-identical
# sim-domain JSONL event streams, whatever the profiling worker count.
./target/release/nnrt serve 6 2 7 --profile-threads 1 --events "$tmpdir/events-a.jsonl" --json > /dev/null
./target/release/nnrt serve 6 2 7 --profile-threads 4 --events "$tmpdir/events-b.jsonl" --json > /dev/null
cmp "$tmpdir/events-a.jsonl" "$tmpdir/events-b.jsonl" \
  || { echo "event stream not deterministic: 1 vs 4 workers differ" >&2; exit 1; }
[ -s "$tmpdir/events-a.jsonl" ] || { echo "event stream is empty" >&2; exit 1; }
echo "event stream deterministic ($(wc -l < "$tmpdir/events-a.jsonl") sim events, 1 vs 4 workers byte-identical)"

# Live scrape: a listening fleet answers Request::Metrics with a parseable
# exposition carrying the key series, and `nnrt top --once` renders it.
./target/release/nnrt serve --listen 127.0.0.1:0 1 7 \
  > "$tmpdir/obs-server.out" 2> "$tmpdir/obs-server.err" &
obs_server_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^listening on //p' "$tmpdir/obs-server.out")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "obs server never reported its address" >&2; exit 1; }
./target/release/nnrt submit "$addr" dcgan 4 --steps 2 > /dev/null
./target/release/nnrt metrics "$addr" > "$tmpdir/obs-scrape.txt"
python3 - "$tmpdir/obs-scrape.txt" <<'PY'
import sys
series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, value = line.rsplit(" ", 1)
    float(value)  # every sample value parses
    series[name.split("{", 1)[0]] = float(value)
required = [
    "nnrt_jobs_submitted_total",
    "nnrt_jobs",
    "nnrt_queue_depth",
    "nnrt_node_utilization",
    "nnrt_store_entries",
    "nnrt_rpc_requests_total",
    "nnrt_rpc_latency_seconds_bucket",
]
missing = [name for name in required if name not in series]
assert not missing, f"exposition is missing series: {missing}"
assert series["nnrt_jobs_submitted_total"] == 1.0
print(f"exposition ok: {len(series)} distinct series, all values parse")
PY
./target/release/nnrt top "$addr" --once > "$tmpdir/obs-top.out"
grep -q "^jobs " "$tmpdir/obs-top.out"
grep -q "^store " "$tmpdir/obs-top.out"
./target/release/nnrt shutdown "$addr" > /dev/null
wait "$obs_server_pid" || { echo "obs server exited non-zero" >&2; exit 1; }
echo "obs live scrape ok (metrics + top against a listening fleet)"

echo "CI green."
