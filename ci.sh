#!/usr/bin/env bash
# Local CI: format check, lints, then the tier-1 and workspace test suites.
# Everything runs offline against the vendored path dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests =="
cargo test --workspace -q --offline

echo "== chaos suite (pinned seed 99) =="
cargo test -q --offline --test chaos_fleet
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/nnrt serve 8 2 7 --chaos 99 --json > "$tmpdir/chaos-a.json"
./target/release/nnrt serve 8 2 7 --chaos 99 --json > "$tmpdir/chaos-b.json"
cmp "$tmpdir/chaos-a.json" "$tmpdir/chaos-b.json" \
  || { echo "chaos determinism violated: same seed produced different reports" >&2; exit 1; }
echo "chaos report deterministic (seed 99, byte-identical JSON)"

echo "CI green."
