//! Pipelining-semantics tests of the event-loop RPC server: a connection
//! that sends K frames without awaiting responses gets K responses back in
//! request order, interleaved connections never cross-deliver, a
//! mid-pipeline typed error doesn't poison the frames behind it, and a
//! pipeline deeper than the server's in-flight cap still drains completely.
//!
//! These drive raw `TcpStream`s (not `RpcClient`, which is strictly
//! request/response) so the wire-level burst is real: all requests are
//! written before any response is read.

use nnrt::rpc::{
    decode, encode, read_frame, write_frame, DrainPolicy, ErrorKind, FleetServer, Request,
    Response, ServerConfig, SubmitSpec,
};
use nnrt::serve::FleetConfig;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spec(model: &str, name: &str) -> SubmitSpec {
    let mut s = SubmitSpec::new(model);
    s.batch = 4;
    s.steps = 1;
    s.name = name.to_string();
    s
}

fn server(pipeline_depth: usize) -> FleetServer {
    FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                node_count: 2,
                queue_capacity: 256,
                seed: 0x91BE,
                ..FleetConfig::default()
            },
            drain: DrainPolicy::OnShutdown,
            pipeline_depth,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind")
}

/// Writes every request as one burst, then reads exactly as many responses.
fn burst(stream: &mut TcpStream, requests: &[Request]) -> Vec<Response> {
    for request in requests {
        write_frame(stream, &encode(request)).expect("write");
    }
    stream.flush().expect("flush");
    requests
        .iter()
        .map(|_| {
            let payload = read_frame(stream).expect("read");
            decode::<Response>(&payload).expect("decode")
        })
        .collect()
}

fn connect(server: &FleetServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream
}

#[test]
fn a_burst_of_pipelined_submits_answers_in_request_order() {
    let server = server(16);
    let mut stream = connect(&server);

    let requests: Vec<Request> = (0..8)
        .map(|i| Request::Submit(spec("dcgan", &format!("burst-{i}"))))
        .collect();
    let responses = burst(&mut stream, &requests);

    // In-order responses mean in-order job ids: the i-th submit frame on
    // the wire is the i-th admission.
    for (i, response) in responses.iter().enumerate() {
        match response {
            Response::Submitted { job_id } => {
                assert_eq!(*job_id, i as u64, "response {i} out of request order")
            }
            other => panic!("submit {i} must be admitted, got {other:?}"),
        }
    }

    // The names confirm the ordering end to end, not just the id counter.
    let jobs = match burst(&mut stream, &[Request::ListJobs]).remove(0) {
        Response::Jobs(jobs) => jobs,
        other => panic!("expected jobs, got {other:?}"),
    };
    let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
    let expected: Vec<String> = (0..8).map(|i| format!("burst-{i}")).collect();
    assert_eq!(
        names,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );
}

#[test]
fn a_mid_pipeline_typed_error_does_not_poison_later_frames() {
    let server = server(16);
    let mut stream = connect(&server);

    let responses = burst(
        &mut stream,
        &[
            Request::Submit(spec("dcgan", "ok-0")),
            Request::Submit(spec("no-such-model", "bad")),
            Request::Submit(spec("lstm", "ok-1")),
            Request::Status { job_id: 999 },
            Request::ListJobs,
        ],
    );

    match &responses[0] {
        Response::Submitted { job_id } => assert_eq!(*job_id, 0),
        other => panic!("first submit must land, got {other:?}"),
    }
    match &responses[1] {
        Response::Error(frame) => assert_eq!(frame.kind, ErrorKind::UnknownModel),
        other => panic!("bad model must be a typed error, got {other:?}"),
    }
    match &responses[2] {
        Response::Submitted { job_id } => {
            assert_eq!(*job_id, 1, "the error must not consume a job id")
        }
        other => panic!("the submit behind the error must land, got {other:?}"),
    }
    match &responses[3] {
        Response::Error(frame) => assert_eq!(frame.kind, ErrorKind::UnknownJob),
        other => panic!("unknown id must be a typed error, got {other:?}"),
    }
    match &responses[4] {
        Response::Jobs(jobs) => {
            assert_eq!(jobs.len(), 2, "exactly the two good submits exist");
        }
        other => panic!("list_jobs behind two errors must answer, got {other:?}"),
    }
}

#[test]
fn interleaved_connections_never_cross_deliver() {
    let server = server(16);
    let mut a = connect(&server);
    let mut b = connect(&server);

    // Interleave at the socket level: a frame on A, a frame on B, …, with
    // nothing read until both bursts are fully written.
    const K: usize = 6;
    for i in 0..K {
        write_frame(
            &mut a,
            &encode(&Request::Submit(spec("dcgan", &format!("a-{i}")))),
        )
        .expect("write a");
        write_frame(
            &mut b,
            &encode(&Request::Submit(spec("lstm", &format!("b-{i}")))),
        )
        .expect("write b");
    }

    let read_all = |stream: &mut TcpStream| -> Vec<(u64, String)> {
        let ids: Vec<u64> = (0..K)
            .map(|_| {
                let payload = read_frame(stream).expect("read");
                match decode::<Response>(&payload).expect("decode") {
                    Response::Submitted { job_id } => job_id,
                    other => panic!("expected an admission, got {other:?}"),
                }
            })
            .collect();
        ids.into_iter()
            .map(|id| {
                // Resolve each id back to its job name through a fresh
                // request — the server's view, not the client's assumption.
                write_frame(stream, &encode(&Request::Status { job_id: id })).expect("write");
                let payload = read_frame(stream).expect("read");
                match decode::<Response>(&payload).expect("decode") {
                    Response::Job(status) => (id, status.name),
                    other => panic!("expected a status, got {other:?}"),
                }
            })
            .collect()
    };
    let a_jobs = read_all(&mut a);
    let b_jobs = read_all(&mut b);

    // Each connection got exactly its own submissions, in its own order.
    let a_names: Vec<&str> = a_jobs.iter().map(|(_, n)| n.as_str()).collect();
    let b_names: Vec<&str> = b_jobs.iter().map(|(_, n)| n.as_str()).collect();
    assert_eq!(
        a_names,
        (0..K).map(|i| format!("a-{i}")).collect::<Vec<_>>(),
        "connection A saw a foreign or reordered response"
    );
    assert_eq!(
        b_names,
        (0..K).map(|i| format!("b-{i}")).collect::<Vec<_>>(),
        "connection B saw a foreign or reordered response"
    );

    // And the id sets are disjoint and jointly complete.
    let mut all_ids: Vec<u64> = a_jobs.iter().chain(&b_jobs).map(|(id, _)| *id).collect();
    all_ids.sort_unstable();
    assert_eq!(all_ids, (0..2 * K as u64).collect::<Vec<_>>());
}

#[test]
fn a_burst_deeper_than_the_pipeline_cap_still_drains_in_order() {
    // Depth 2: at most two requests in flight, the other eight wait in
    // kernel/userspace buffers until slots free. The client sees nothing
    // but a complete, ordered response stream.
    let server = server(2);
    let mut stream = connect(&server);

    let requests: Vec<Request> = (0..10)
        .map(|i| Request::Submit(spec("dcgan", &format!("deep-{i}"))))
        .collect();
    let responses = burst(&mut stream, &requests);
    assert_eq!(responses.len(), 10);
    for (i, response) in responses.iter().enumerate() {
        match response {
            Response::Submitted { job_id } => assert_eq!(*job_id, i as u64),
            other => panic!("deep burst frame {i} must land, got {other:?}"),
        }
    }

    let report = {
        let payload = {
            write_frame(&mut stream, &encode(&Request::Shutdown)).expect("write");
            read_frame(&mut stream).expect("read")
        };
        match decode::<Response>(&payload).expect("decode") {
            Response::Bye { report } => report,
            other => panic!("expected the final report, got {other:?}"),
        }
    };
    let parsed: serde_json::Value = serde_json::from_str(&report).expect("report is JSON");
    assert_eq!(parsed["jobs"].as_array().expect("jobs").len(), 10);
    assert!(server.join().is_some());
}
