//! Determinism guarantees of the observability layer.
//!
//! The sim-clock metrics and event stream are a pure function of
//! `(config, seed)`: any profiling worker count and any durability setting
//! (fault-free) must produce byte-identical expositions and JSONL event
//! streams. Turning observability off must be observationally free — the
//! rest of the fleet report stays byte-identical, with `metrics: null`.

use nnrt::obs::{Clock, Obs, ObsConfig};
use nnrt::serve::{DurabilityConfig, Fleet, FleetConfig, JobSpec};
use proptest::prelude::*;
use std::path::PathBuf;

/// A fresh scratch directory, unique per test invocation.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nnrt-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small mixed workload: two models, four jobs, two nodes.
fn submit_workload(fleet: &mut Fleet) {
    let models = [
        ("dcgan", nnrt::models::dcgan(4).graph),
        ("lstm", nnrt::models::lstm(4).graph),
    ];
    for i in 0..4 {
        let (model, graph) = &models[i % models.len()];
        fleet
            .submit(JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: graph.clone(),
                steps: 2,
                priority: (i % 2) as u8,
                weight: 1.0 + i as f64,
            })
            .expect("queue sized for the workload");
    }
}

/// Runs the workload and returns the sim-domain observability artifacts:
/// (exposition text, event JSONL, report JSON).
fn run_observed(config: FleetConfig) -> (String, String, String) {
    let mut fleet = Fleet::new(config);
    submit_workload(&mut fleet);
    let report = fleet.run();
    let obs = fleet.obs();
    (
        obs.expose(Some(Clock::Sim)),
        obs.events_jsonl(Some(Clock::Sim)),
        report.to_json(),
    )
}

fn base_config() -> FleetConfig {
    FleetConfig {
        node_count: 2,
        checkpoint_interval: 1,
        ..FleetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any profiling worker count produces byte-identical sim metrics and
    /// sim events — the profiler pool is invisible in the observability
    /// stream, exactly as it is in the report.
    #[test]
    fn sim_obs_is_worker_count_invariant(threads in 2usize..6) {
        let serial = run_observed(FleetConfig {
            profile_threads: 1,
            ..base_config()
        });
        let sharded = run_observed(FleetConfig {
            profile_threads: threads,
            ..base_config()
        });
        prop_assert_eq!(&serial.0, &sharded.0, "exposition differs at {} workers", threads);
        prop_assert_eq!(&serial.1, &sharded.1, "event stream differs at {} workers", threads);
        prop_assert_eq!(&serial.2, &sharded.2, "report differs at {} workers", threads);
    }
}

/// A fault-free durable run's sim-domain metrics and events are
/// byte-identical to an in-memory run's: journaling is wall-domain only.
#[test]
fn sim_obs_is_durability_invariant() {
    let dir = tmpdir("invariant");
    let plain = run_observed(base_config());
    let durable = run_observed(FleetConfig {
        durability: Some(DurabilityConfig::new(dir.clone())),
        ..base_config()
    });
    assert_eq!(plain.0, durable.0, "sim exposition differs under --durable");
    assert_eq!(plain.1, durable.1, "sim events differ under --durable");
    assert_eq!(plain.2, durable.2, "report differs under --durable");
    let _ = std::fs::remove_dir_all(&dir);
}

/// With observability off the fleet behaves identically: the report is
/// byte-identical except `metrics` drops to `null`, and no events or
/// series exist to read back.
#[test]
fn disabled_obs_is_observationally_free() {
    let on = run_observed(base_config());
    let off_config = FleetConfig {
        obs: ObsConfig::off(),
        ..base_config()
    };
    let mut fleet = Fleet::new(off_config);
    submit_workload(&mut fleet);
    let report = fleet.run();
    assert!(
        report.metrics.is_none(),
        "disabled obs must embed no metrics"
    );
    let obs = fleet.obs();
    assert_eq!(obs.expose(None), "", "disabled obs must expose nothing");
    assert!(obs.events_snapshot(None).is_empty());

    // Strip the one field that legitimately differs and compare the rest.
    let strip = |json: &str| -> String {
        let v: serde_json::Value = serde_json::from_str(json).expect("report parses");
        let serde_json::Value::Object(fields) = v else {
            panic!("report must be an object");
        };
        let kept: Vec<(String, serde_json::Value)> =
            fields.into_iter().filter(|(k, _)| k != "metrics").collect();
        serde_json::to_string(&serde_json::Value::Object(kept)).expect("re-encodes")
    };
    assert_eq!(
        strip(&on.2),
        strip(&report.to_json()),
        "obs must be a pure side effect"
    );
}

/// The embedded report metrics are exactly the sim exposition — the same
/// text a post-run `expose(Some(Sim))` returns.
#[test]
fn report_embeds_the_sim_exposition() {
    let mut fleet = Fleet::new(base_config());
    submit_workload(&mut fleet);
    let report = fleet.run();
    let embedded = report.metrics.as_deref().expect("metrics embedded");
    assert_eq!(embedded, fleet.obs().expose(Some(Clock::Sim)));
    // Key series exist with plausible values.
    let exp = nnrt::obs::parse_exposition(embedded).expect("embedded exposition parses");
    assert_eq!(
        exp.value("nnrt_jobs_submitted_total", &[("clock", "sim")]),
        Some(4.0)
    );
    assert_eq!(
        exp.value("nnrt_jobs_completed_total", &[("clock", "sim")]),
        Some(4.0)
    );
    assert_eq!(
        exp.value("nnrt_job_duration_seconds_count", &[("clock", "sim")]),
        Some(4.0)
    );
    assert_eq!(exp.value("nnrt_jobs", &[("phase", "completed")]), Some(4.0));
    assert!(
        exp.value("nnrt_profile_measurements_total", &[])
            .unwrap_or(0.0)
            > 0.0
    );
    // No wall-domain series may leak into the embedded (byte-compared)
    // exposition.
    for s in &exp.samples {
        assert_eq!(
            s.label("clock"),
            Some("sim"),
            "wall series {} leaked into the report",
            s.name
        );
    }
}

/// Golden exposition: a hand-built registry encodes to exactly these
/// bytes — ordering by (name, clock, labels), escaping, histogram
/// suffixes. Any encoder change that shifts a byte breaks the CI cmp
/// contracts, so it must show up here first.
#[test]
fn exposition_text_is_golden() {
    let obs = Obs::new(ObsConfig::on());
    obs.counter_add(Clock::Sim, "nnrt_jobs_completed_total", &[], 3);
    obs.gauge_set(Clock::Sim, "nnrt_store_hit_rate", &[], 0.25);
    obs.counter_add(
        Clock::Wall,
        "nnrt_rpc_requests_total",
        &[("kind", "submit"), ("outcome", "ok")],
        2,
    );
    obs.counter_add(
        Clock::Sim,
        "nnrt_escaped_total",
        &[("msg", "a\"b\\c\nd")],
        1,
    );
    obs.observe(Clock::Sim, "nnrt_queue_wait_seconds", &[], 0.5);
    let expected = concat!(
        "# TYPE nnrt_escaped_total counter\n",
        "nnrt_escaped_total{clock=\"sim\",msg=\"a\\\"b\\\\c\\nd\"} 1\n",
        "# TYPE nnrt_jobs_completed_total counter\n",
        "nnrt_jobs_completed_total{clock=\"sim\"} 3\n",
        "# TYPE nnrt_queue_wait_seconds histogram\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"0.000001\"} 0\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"0.00001\"} 0\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"0.0001\"} 0\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"0.001\"} 0\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"0.01\"} 0\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"0.1\"} 0\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"1\"} 1\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"10\"} 1\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"100\"} 1\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"1000\"} 1\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"10000\"} 1\n",
        "nnrt_queue_wait_seconds_bucket{clock=\"sim\",le=\"+Inf\"} 1\n",
        "nnrt_queue_wait_seconds_sum{clock=\"sim\"} 0.5\n",
        "nnrt_queue_wait_seconds_count{clock=\"sim\"} 1\n",
        "# TYPE nnrt_rpc_requests_total counter\n",
        "nnrt_rpc_requests_total{clock=\"wall\",kind=\"submit\",outcome=\"ok\"} 2\n",
        "# TYPE nnrt_store_hit_rate gauge\n",
        "nnrt_store_hit_rate{clock=\"sim\"} 0.25\n",
    );
    assert_eq!(obs.expose(None), expected);
    // Filtering by clock keeps only that domain's series.
    assert!(!obs.expose(Some(Clock::Sim)).contains("nnrt_rpc_requests"));
    assert!(!obs
        .expose(Some(Clock::Wall))
        .contains("nnrt_jobs_completed"));
}

/// Sim event streams are worker-count- and durability-invariant, and every
/// event's clock matches the filter it was snapshotted under.
#[test]
fn sim_events_have_coherent_structure() {
    let mut fleet = Fleet::new(base_config());
    submit_workload(&mut fleet);
    fleet.run();
    let events = fleet.obs().events_snapshot(Some(Clock::Sim));
    assert!(!events.is_empty());
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.clock, Clock::Sim);
        assert_eq!(e.seq, i as u64, "sim seq numbers are dense from 0");
    }
    // The lifecycle arc of job 0 appears in causal order.
    let of_job0: Vec<&str> = events
        .iter()
        .filter(|e| e.job == Some(0))
        .map(|e| e.kind.name())
        .collect();
    let admit = of_job0.iter().position(|k| *k == "admit").expect("admit");
    let place = of_job0.iter().position(|k| *k == "place").expect("place");
    let complete = of_job0
        .iter()
        .position(|k| *k == "complete")
        .expect("complete");
    assert!(admit < place && place < complete);
}
