//! Loopback integration tests of the `nnrt-rpc` front-end: concurrent
//! clients over real TCP, typed saturation backpressure with honored retry
//! hints, and the determinism contract — a job mix submitted over the wire
//! produces a fleet report byte-identical to the in-process `Fleet` API.

use nnrt::rpc::{
    ClientError, DrainPolicy, ErrorKind, FleetServer, RpcClient, ServerConfig, SubmitSpec,
};
use nnrt::serve::{Fleet, FleetConfig, JobPhase, JobSpec};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A spec for `model` at batch 4 (small graphs keep the simulated fleet
/// quick) running `steps` training steps.
fn spec(model: &str, steps: u32) -> SubmitSpec {
    let mut s = SubmitSpec::new(model);
    s.batch = 4;
    s.steps = steps;
    s
}

#[test]
fn two_concurrent_clients_submit_and_query() {
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                seed: 0x5E21E,
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();

    // Two clients connected at once, each holding its own socket.
    let ids: Vec<u64> = ["dcgan", "lstm"]
        .map(|model| {
            thread::spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                client.submit(&spec(model, 2)).expect("submit")
            })
        })
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(
        ids.iter().collect::<BTreeSet<_>>().len(),
        2,
        "concurrent submissions get distinct job ids"
    );

    let mut client = RpcClient::connect(addr).expect("connect");
    for &id in &ids {
        let status = client.status(id).expect("status");
        assert_eq!(status.id, id);
        assert!(
            status.name.starts_with(&status.model),
            "server-assigned names embed the model: {}",
            status.name
        );
    }
    let jobs = client.list_jobs().expect("list");
    assert_eq!(jobs.len(), 2);
    assert!(jobs.windows(2).all(|w| w[0].id < w[1].id), "sorted by id");

    // Unknown ids and unknown models come back as typed refusals.
    match client.status(999) {
        Err(ClientError::Rejected(frame)) => assert_eq!(frame.kind, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob, got {other:?}"),
    }
    match client.submit(&spec("vgg-999", 1)) {
        Err(ClientError::Rejected(frame)) => assert_eq!(frame.kind, ErrorKind::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    let report = client.shutdown().expect("shutdown");
    let parsed: serde_json::Value = serde_json::from_str(&report).expect("report is JSON");
    assert_eq!(parsed["jobs"].as_array().expect("jobs").len(), 2);
    assert_eq!(
        server.join().as_deref(),
        Some(report.as_str()),
        "join returns the same report the Bye frame carried"
    );
}

#[test]
fn saturated_submit_returns_a_typed_frame_with_a_positive_hint() {
    // OnShutdown holds the queue, so capacity 1 saturates deterministically.
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                queue_capacity: 1,
                ..FleetConfig::default()
            },
            drain: DrainPolicy::OnShutdown,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let mut client = RpcClient::connect(server.local_addr()).expect("connect");

    client.submit(&spec("dcgan", 2)).expect("first fits");
    match client.submit(&spec("lstm", 2)) {
        Err(ClientError::Rejected(frame)) => {
            assert_eq!(frame.kind, ErrorKind::Saturated);
            let hint = frame.retry_after_secs.expect("saturation carries a hint");
            assert!(hint > 0.0, "retry hint must be positive, got {hint}");
            assert!(
                frame.message.contains("saturated"),
                "message names the condition: {}",
                frame.message
            );
        }
        other => panic!("expected Saturated, got {other:?}"),
    }

    let report = client.shutdown().expect("shutdown");
    let parsed: serde_json::Value = serde_json::from_str(&report).expect("report is JSON");
    assert_eq!(parsed["jobs"].as_array().expect("jobs").len(), 1);
    assert_eq!(parsed["rejected"].as_u64(), Some(1));
    drop(server);
}

#[test]
fn onshutdown_report_is_byte_identical_to_the_in_process_fleet() {
    let config = FleetConfig {
        node_count: 2,
        seed: 0xD15C0,
        ..FleetConfig::default()
    };
    let mix = [
        ("dcgan", 2u32),
        ("lstm", 3),
        ("dcgan", 2),
        ("transformer", 1),
    ];

    // Over the wire, holding all work until shutdown.
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: config.clone(),
            drain: DrainPolicy::OnShutdown,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let mut client = RpcClient::connect(server.local_addr()).expect("connect");
    for (model, steps) in mix {
        client.submit(&spec(model, steps)).expect("submit");
    }
    let wire_report = client.shutdown().expect("shutdown");

    // The same mix through the in-process API, replicating the server's
    // `{model}-{id}` naming.
    let mut fleet = Fleet::new(config);
    for (i, (model, steps)) in mix.into_iter().enumerate() {
        let model_spec = nnrt::models::by_name(model, Some(4)).expect("known model");
        fleet
            .submit(JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: model_spec.graph,
                steps,
                priority: 0,
                weight: 1.0,
            })
            .expect("submit");
    }
    let local_report = fleet.run().to_json();

    assert_eq!(
        wire_report, local_report,
        "the RPC path must not perturb the simulation"
    );
}

#[test]
fn connection_cap_rejects_with_typed_saturated_frame() {
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // The first client claims the only slot (a completed request proves the
    // accept loop registered it).
    let mut pinned = RpcClient::connect(addr).expect("connect");
    pinned.list_jobs().expect("first connection is served");

    // The second connection is accepted just long enough to receive one
    // typed Saturated frame with a retry hint.
    let mut rejected = RpcClient::connect(addr).expect("tcp connect still succeeds");
    match rejected.list_jobs() {
        Err(ClientError::Rejected(frame)) => {
            assert_eq!(frame.kind, ErrorKind::Saturated);
            assert!(
                frame.retry_after_secs.unwrap_or(0.0) > 0.0,
                "cap rejections carry a positive retry hint"
            );
        }
        other => panic!("over-cap connection must be rejected, got {other:?}"),
    }

    // Dropping the pinned connection frees the slot for a new client.
    drop(pinned);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut retry = RpcClient::connect(addr).expect("connect");
        if retry.list_jobs().is_ok() {
            retry.shutdown().expect("shutdown");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "a freed slot must admit the next connection"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn idle_connection_is_dropped_after_the_read_timeout() {
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // A silent client: no frame ever sent. The server must hang up on its
    // own instead of pinning the reader thread forever.
    let mut idle = std::net::TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut buf = [0u8; 1];
    let started = Instant::now();
    let hung_up = match std::io::Read::read(&mut idle, &mut buf) {
        Ok(0) => true, // clean EOF
        Err(e)
            if e.kind() != std::io::ErrorKind::WouldBlock
                && e.kind() != std::io::ErrorKind::TimedOut =>
        {
            true
        } // reset
        other => panic!("server must drop the idle connection, got {other:?}"),
    };
    assert!(hung_up);
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "the hangup must come from the idle timeout, not the reply timeout"
    );

    // A live client on the same server still works afterwards.
    let mut client = RpcClient::connect(addr).expect("connect");
    client.list_jobs().expect("live connections are unaffected");
    client.shutdown().expect("shutdown");
}

#[test]
fn saturation_under_concurrency_accounts_every_job_exactly_once() {
    // One slot resident, one slot queued: eight racing submitters must see
    // backpressure, honor the hints, and still all land.
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                node_count: 1,
                max_jobs_per_node: 1,
                queue_capacity: 1,
                seed: 0xCAFE,
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();
    let queue_rejections = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let queue_rejections = Arc::clone(&queue_rejections);
            thread::spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                let mut ids = Vec::new();
                for j in 0..2 {
                    let model = if (t + j) % 2 == 0 { "dcgan" } else { "lstm" };
                    let deadline = Instant::now() + Duration::from_secs(60);
                    loop {
                        match client.submit(&spec(model, 3)) {
                            Ok(id) => {
                                ids.push(id);
                                break;
                            }
                            Err(ClientError::Rejected(frame))
                                if frame.kind == ErrorKind::Saturated =>
                            {
                                // Every rejection — admission queue or
                                // command inbox — must carry a usable wait.
                                let hint =
                                    frame.retry_after_secs.expect("saturation carries a hint");
                                assert!(hint > 0.0, "hint must be positive, got {hint}");
                                if frame.message.contains("admission queue") {
                                    queue_rejections.fetch_add(1, Ordering::SeqCst);
                                }
                                assert!(
                                    Instant::now() < deadline,
                                    "honored retries must eventually land"
                                );
                                // The hint is simulated seconds — an upper
                                // bound, not a wall-clock wait.
                                thread::sleep(Duration::from_secs_f64(hint.min(0.01)));
                            }
                            Err(other) => panic!("unexpected submit failure: {other}"),
                        }
                    }
                }
                ids
            })
        })
        .collect();

    let mut ids: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids.len(), 8, "every honored retry completes");
    assert_eq!(
        ids,
        (0..8).collect::<Vec<u64>>(),
        "rejected attempts must not burn job ids"
    );

    let mut client = RpcClient::connect(addr).expect("connect");
    let report = client.shutdown().expect("shutdown");
    let parsed: serde_json::Value = serde_json::from_str(&report).expect("report is JSON");
    let jobs = parsed["jobs"].as_array().expect("jobs");
    assert_eq!(jobs.len(), 8, "the final report accounts for every job");
    let reported: BTreeSet<u64> = jobs
        .iter()
        .map(|j| j["id"].as_u64().expect("job id"))
        .collect();
    assert_eq!(reported.len(), 8, "each job appears exactly once");
    assert_eq!(
        parsed["rejected"].as_u64(),
        Some(queue_rejections.load(Ordering::SeqCst)),
        "the fleet counts exactly the admission rejections clients saw"
    );
    drop(server);
}

#[test]
fn metrics_and_events_account_every_request_kind() {
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                seed: 0x0B5,
                ..FleetConfig::default()
            },
            drain: DrainPolicy::OnShutdown,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let mut client = RpcClient::connect(server.local_addr()).expect("connect");

    let id = client.submit(&spec("dcgan", 1)).expect("submit");
    match client.status(999) {
        Err(ClientError::Rejected(frame)) => assert_eq!(frame.kind, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob, got {other:?}"),
    }

    // Two scrapes: the first proves the earlier requests were accounted;
    // the second proves the scrape itself was.
    let _first = client.metrics().expect("metrics");
    let text = client.metrics().expect("metrics");
    let exp = nnrt::obs::parse_exposition(&text).expect("exposition parses");
    let req = |kind: &str, outcome: &str| {
        exp.value(
            "nnrt_rpc_requests_total",
            &[("clock", "wall"), ("kind", kind), ("outcome", outcome)],
        )
    };
    assert_eq!(req("submit", "ok"), Some(1.0));
    assert_eq!(
        req("status", "error"),
        Some(1.0),
        "typed errors are counted"
    );
    assert_eq!(req("metrics", "ok"), Some(1.0));
    // Per-kind latency histograms: one submit observation, finite and
    // accounted in the +Inf bucket.
    assert_eq!(
        exp.value("nnrt_rpc_latency_seconds_count", &[("kind", "submit")]),
        Some(1.0)
    );
    assert_eq!(
        exp.value(
            "nnrt_rpc_latency_seconds_bucket",
            &[("kind", "submit"), ("le", "+Inf")]
        ),
        Some(1.0)
    );
    // The same scrape carries the sim domain too.
    assert_eq!(
        exp.value("nnrt_jobs_submitted_total", &[("clock", "sim")]),
        Some(1.0)
    );
    assert_eq!(
        exp.value("nnrt_queue_depth", &[("clock", "sim")]),
        Some(1.0)
    );

    // The event stream pairs with the counters: a sim Admit for the job,
    // wall RpcRequest records for each exchange.
    let events = client.events().expect("events");
    assert!(events.iter().any(|e| e.clock == nnrt::obs::Clock::Sim
        && e.kind == nnrt::obs::EventKind::Admit
        && e.job == Some(id)));
    let rpc_details: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == nnrt::obs::EventKind::RpcRequest)
        .map(|e| e.detail.as_str())
        .collect();
    assert!(rpc_details.contains(&"submit: ok"), "{rpc_details:?}");
    assert!(rpc_details.contains(&"status: error"), "{rpc_details:?}");
    assert!(rpc_details.contains(&"metrics: ok"), "{rpc_details:?}");
    // Wall seq numbers are dense within the wall domain.
    let wall_seqs: Vec<u64> = events
        .iter()
        .filter(|e| e.clock == nnrt::obs::Clock::Wall)
        .map(|e| e.seq)
        .collect();
    assert!(wall_seqs.windows(2).all(|w| w[1] == w[0] + 1));

    client.shutdown().expect("shutdown");
}

#[test]
fn eager_service_completes_jobs_between_requests() {
    let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = RpcClient::connect(server.local_addr()).expect("connect");
    let id = client.submit(&spec("lstm", 1)).expect("submit");

    // Eager drain runs the fleet while no commands are pending, so the job
    // reaches Completed without any shutdown.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(id).expect("status");
        if status.phase == JobPhase::Completed {
            assert_eq!(status.steps_done, status.steps);
            assert!(status.node.is_some(), "completed jobs report their node");
            break;
        }
        assert!(Instant::now() < deadline, "job must complete eagerly");
        thread::sleep(Duration::from_millis(10));
    }

    // The profile store is live mid-service too.
    let snapshot = client.snapshot().expect("snapshot");
    assert!(snapshot.entries > 0, "profiling populated the store");
    assert!(snapshot.misses > 0, "the cold job missed first");
    client.shutdown().expect("shutdown");
}
