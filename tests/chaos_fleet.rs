//! Chaos-fleet integration tests: deterministic fault injection against the
//! multi-tenant service, and the recovery machinery it exercises — node
//! crash with checkpoint/restart, straggler avoidance, profile-store
//! corruption, and graceful degradation when profiling runs out of budget.

use nnrt::prelude::*;
use nnrt::serve::{FaultEvent, FaultPlan, Fleet, FleetConfig, FleetReport, JobSpec};

fn job(name: &str, model: &str, graph: &nnrt::graph::DataflowGraph, steps: u32) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        model: model.to_string(),
        graph: graph.clone(),
        steps,
        priority: 0,
        weight: 1.0,
    }
}

fn dcgan_fleet(config: &FleetConfig, jobs: usize, steps: u32) -> Fleet {
    let g = dcgan(4).graph;
    let mut fleet = Fleet::new(config.clone());
    for i in 0..jobs {
        fleet
            .submit(job(&format!("dcgan-{i}"), "dcgan", &g, steps))
            .unwrap();
    }
    fleet
}

#[test]
fn fault_free_plan_is_bit_identical_to_no_plan() {
    let config = FleetConfig {
        node_count: 2,
        ..FleetConfig::default()
    };
    let plain = dcgan_fleet(&config, 6, 3).run();

    let mut armed = dcgan_fleet(&config, 6, 3);
    armed.set_fault_plan(FaultPlan::none());
    let chaos = armed.run();

    assert_eq!(
        plain.to_json(),
        chaos.to_json(),
        "an empty fault plan must not perturb a single bit of the run"
    );
    assert_eq!(chaos.faults_injected, 0);
    assert_eq!(chaos.retries_total, 0);
    assert_eq!(chaos.checkpoint_restores_total, 0);
    assert_eq!(chaos.degraded_keys_total, 0);
    assert!(chaos.node_downtime_secs.iter().all(|&d| d == 0.0));
}

/// The headline acceptance scenario: one of two nodes crashes mid-run right
/// after the shared profile store loses nearly everything. Every admitted
/// job still completes; the evicted jobs resume from checkpoints on the
/// surviving node; the cold job's re-profiling blows its remaining budget
/// and degrades keys to the baseline plan.
#[test]
fn crash_with_corrupted_store_recovers_via_checkpoints_and_degradation() {
    let config = FleetConfig {
        node_count: 2,
        max_jobs_per_node: 2,
        checkpoint_interval: 1,
        ..FleetConfig::default()
    };

    // Size the fault window from a fault-free dry run: the crash must land
    // inside node 0's stepping phase (after its up-front profiling bill),
    // while residents have checkpoints to lose.
    let dry = dcgan_fleet(&config, 4, 6).run();
    let node0_jobs: Vec<_> = dry.jobs.iter().filter(|j| j.node == 0).collect();
    assert!(!node0_jobs.is_empty());
    let prof_end: f64 = node0_jobs.iter().map(|j| j.profiling_secs).sum();
    let drain: f64 = node0_jobs
        .iter()
        .map(|j| j.completed_at)
        .fold(0.0, f64::max);
    assert!(drain > prof_end, "node 0 must have a stepping phase");
    let crash_at = 0.5 * (prof_end + drain);
    let cold_profile = dry
        .jobs
        .iter()
        .map(|j| j.profiling_steps)
        .max()
        .expect("someone profiled cold");
    assert!(cold_profile > 0);

    let plan = FaultPlan {
        events: vec![
            // The store loses (almost) everything just before the crash, so
            // re-admitted jobs cannot warm-start.
            FaultEvent::StoreCorruption {
                at: crash_at * 0.99,
                drop_fraction: 1.0,
            },
            FaultEvent::NodeCrash {
                node: 0,
                at: crash_at,
                down_secs: drain, // node 0 stays down for the rest of the run
            },
        ],
        // Enough for one cold profile plus a little, but nowhere near two:
        // the cold job's post-corruption re-profile must truncate.
        profiling_step_budget: Some(cold_profile + 4),
        seed: 99,
    };

    let run = |plan: FaultPlan| -> FleetReport {
        let mut fleet = dcgan_fleet(&config, 4, 6);
        fleet.set_fault_plan(plan);
        fleet.run()
    };
    let report = run(plan.clone());

    assert_eq!(
        report.jobs.len(),
        4,
        "every admitted job completes despite the crash"
    );
    assert!(
        report.jobs.iter().all(|j| j.steps == 6),
        "every job runs its full step count"
    );
    assert_eq!(report.faults_injected, 2);
    assert!(
        report.retries_total >= 1,
        "the crash must evict and re-admit residents"
    );
    assert!(
        report.checkpoint_restores_total >= 1,
        "at least one evicted job resumes from its checkpoint"
    );
    assert!(
        report.degraded_keys_total >= 1,
        "the budget-starved re-profile must degrade keys to the baseline plan"
    );
    assert!(
        report.node_downtime_secs[0] > 0.0,
        "the crashed node records downtime"
    );
    assert_eq!(report.node_downtime_secs[1], 0.0);
    // The re-admitted jobs finish on the surviving node.
    let retried: Vec<_> = report.jobs.iter().filter(|j| j.retries > 0).collect();
    assert!(!retried.is_empty());
    for j in &retried {
        assert_eq!(j.node, 1, "{}: must finish on the surviving node", j.name);
    }

    // Determinism: the same plan replays to a byte-identical report.
    let replay = run(plan);
    assert_eq!(report.to_json(), replay.to_json());
}

#[test]
fn straggling_node_is_avoided_until_it_recovers() {
    let config = FleetConfig {
        node_count: 2,
        max_jobs_per_node: 2,
        ..FleetConfig::default()
    };
    let baseline = dcgan_fleet(&config, 6, 3).run();
    let count = |r: &FleetReport, node: u32| r.jobs.iter().filter(|j| j.node == node).count();

    let mut fleet = dcgan_fleet(&config, 6, 3);
    fleet.set_fault_plan(FaultPlan {
        events: vec![FaultEvent::NodeSlowdown {
            node: 0,
            at: 0.0,
            factor: 4.0,
            duration_secs: baseline.makespan_secs * 50.0,
        }],
        profiling_step_budget: None,
        seed: 0,
    });
    let slowed = fleet.run();

    assert_eq!(slowed.jobs.len(), 6, "a straggler never loses jobs");
    assert!(
        slowed.makespan_secs > baseline.makespan_secs,
        "a 4x straggler must cost wall-clock time"
    );
    assert!(
        count(&slowed, 1) > count(&slowed, 0),
        "the health probe must steer placements away from the straggler \
         (node 0: {}, node 1: {})",
        count(&slowed, 0),
        count(&slowed, 1)
    );
    assert_eq!(slowed.faults_injected, 1);
    assert!(
        slowed.node_downtime_secs.iter().all(|&d| d == 0.0),
        "slowdown is not downtime"
    );
}

#[test]
fn zero_profiling_budget_degrades_every_key_and_still_completes() {
    let config = FleetConfig {
        node_count: 2,
        ..FleetConfig::default()
    };
    let mut fleet = dcgan_fleet(&config, 4, 2);
    fleet.set_fault_plan(FaultPlan {
        events: Vec::new(),
        profiling_step_budget: Some(0),
        seed: 0,
    });
    let report = fleet.run();

    assert_eq!(report.jobs.len(), 4);
    assert_eq!(
        report.profiling_steps_total, 0,
        "a zero budget forbids all profiling"
    );
    assert!(
        report.degraded_keys_total > 0,
        "every tunable key falls back to the baseline plan"
    );
    assert!(
        report.jobs.iter().all(|j| j.steps == 2),
        "degraded jobs still train"
    );
    // Degradation costs per-step throughput versus fitted curves (the
    // baseline plan is never faster than the climbed one), though the run
    // as a whole may finish sooner because it skips profiling entirely.
    let fitted = dcgan_fleet(&config, 4, 2).run();
    let step_sum = |r: &FleetReport| r.jobs.iter().map(|j| j.step_secs).sum::<f64>();
    assert!(step_sum(&report) >= step_sum(&fitted));
}

#[test]
fn seeded_plans_replay_identically_and_seeds_differ() {
    let config = FleetConfig {
        node_count: 2,
        ..FleetConfig::default()
    };
    let horizon = dcgan_fleet(&config, 6, 4).run().makespan_secs;

    let run = |seed: u64| -> String {
        let mut fleet = dcgan_fleet(&config, 6, 4);
        fleet.set_fault_plan(FaultPlan::from_seed(seed, 2, horizon));
        fleet.run().to_json()
    };
    assert_eq!(run(99), run(99), "same seed, byte-identical report");
    assert_ne!(
        run(99),
        run(100),
        "different chaos seeds must produce different runs"
    );
}
