//! End-to-end integration: build each paper model, profile it, execute a
//! training step under every executor, and validate both performance claims
//! and scheduling legality.

use nnrt::prelude::*;
use nnrt::sched::OpCatalog;
use std::collections::HashMap;

fn models() -> Vec<ModelSpec> {
    // Smaller batches than the paper's keep the test fast; the invariants
    // are batch-independent.
    vec![resnet50(16), dcgan(16), inception_v3(4), lstm(20)]
}

#[test]
fn runtime_beats_recommendation_on_every_model() {
    for spec in models() {
        let catalog = OpCatalog::new(&spec.graph);
        let cost = KnlCostModel::knl();
        let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(
            &spec.graph,
            &catalog,
            &cost,
        );
        let rt = Runtime::prepare(&spec.graph, cost, RuntimeConfig::default());
        let ours = rt.run_step(&spec.graph);
        assert_eq!(ours.nodes_executed, spec.graph.len(), "{}", spec.name);
        assert!(
            ours.total_secs < rec.total_secs,
            "{}: runtime ({:.4}s) must beat the recommendation ({:.4}s)",
            spec.name,
            ours.total_secs,
            rec.total_secs
        );
    }
}

#[test]
fn executed_schedule_respects_dependencies() {
    // Record the full event trace and verify that no operation starts before
    // every one of its predecessors finished.
    let spec = resnet50(16);
    let mut rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    rt.record_trace(true);
    let report = rt.run_step(&spec.graph);
    let mut started: HashMap<u64, f64> = HashMap::new();
    let mut finished: HashMap<u64, f64> = HashMap::new();
    for ev in &report.trace {
        match ev.kind {
            nnrt::manycore::EventKind::Start => {
                assert!(
                    started.insert(ev.tag, ev.time).is_none(),
                    "op {} started twice",
                    ev.tag
                );
            }
            nnrt::manycore::EventKind::Finish => {
                assert!(finished.insert(ev.tag, ev.time).is_none());
            }
        }
    }
    assert_eq!(started.len(), spec.graph.len());
    assert_eq!(finished.len(), spec.graph.len());
    let eps = 1e-9;
    for (id, _) in spec.graph.iter() {
        let s = started[&(id.0 as u64)];
        for pred in spec.graph.preds(id) {
            let f = finished[&(pred.0 as u64)];
            assert!(
                s + eps >= f,
                "op {} started at {s} before predecessor {} finished at {f}",
                id.0,
                pred.0
            );
        }
    }
}

#[test]
fn strategies_never_lose_catastrophically() {
    // Every ablation stage must stay within a small factor of the strongest
    // configuration — a scheduling bug typically shows up as a multi-x loss.
    for spec in models() {
        let cost = KnlCostModel::knl();
        let full = Runtime::prepare(&spec.graph, cost.clone(), RuntimeConfig::default())
            .run_step(&spec.graph)
            .total_secs;
        for cfg in [RuntimeConfig::s12_only(), RuntimeConfig::s123()] {
            let t = Runtime::prepare(&spec.graph, cost.clone(), cfg)
                .run_step(&spec.graph)
                .total_secs;
            assert!(
                t < full * 3.0,
                "{}: partial-strategy step {t:.4}s vs full {full:.4}s",
                spec.name
            );
        }
    }
}

#[test]
fn manual_optimization_bounds_the_uniform_grid() {
    let spec = dcgan(16);
    let catalog = OpCatalog::new(&spec.graph);
    let cost = KnlCostModel::knl();
    let (cfg, best) = nnrt::sched::manual_optimization(&spec.graph, &catalog, &cost);
    // The returned config must actually reproduce its reported time.
    let again = TfExecutor::new(cfg).run_step(&spec.graph, &catalog, &cost);
    assert!((again.total_secs - best.total_secs).abs() < 1e-12);
    // And beat the recommendation (the grid includes it).
    let rec =
        TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&spec.graph, &catalog, &cost);
    assert!(best.total_secs <= rec.total_secs);
}

#[test]
fn profiling_cost_is_bounded() {
    // The paper: N <= C/x * 2 profiling steps.
    let spec = lstm(20);
    let rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    let x = rt.config().hillclimb.interval;
    let c = 68;
    assert!(
        rt.model().profiling_steps <= (c / x + 1) * 2,
        "profiling steps {} exceed the paper's bound",
        rt.model().profiling_steps
    );
}

#[test]
fn step_reports_are_deterministic_and_consistent() {
    let spec = dcgan(16);
    let rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    let a = rt.run_step(&spec.graph);
    let b = rt.run_step(&spec.graph);
    assert_eq!(a.total_secs, b.total_secs);
    let per_kind_total: usize = a.per_kind.iter().map(|&(_, _, n)| n).sum();
    assert_eq!(per_kind_total, spec.graph.len());
}
