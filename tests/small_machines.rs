//! The whole stack on machines that are not the paper's KNL: the runtime is
//! generic over topology, so it must schedule correctly on an 8-core laptop
//! or a hypothetical 128-core part.

use nnrt::prelude::*;
use nnrt::sched::OpCatalog;

fn machine(tiles: u32) -> KnlCostModel {
    KnlCostModel::new(
        Topology {
            tiles,
            cores_per_tile: 2,
            smt_per_core: 2,
        },
        KnlParams::default(),
    )
}

#[test]
fn runtime_schedules_on_an_8_core_machine() {
    let cost = machine(4); // 8 cores
    let spec = dcgan(8);
    let config = RuntimeConfig {
        hillclimb: nnrt::sched::HillClimbConfig {
            interval: 2,
            max_threads: 8,
            warm_seed: true,
        },
        default_intra: 8,
        ..RuntimeConfig::default()
    };
    let rt = Runtime::prepare(&spec.graph, cost.clone(), config);
    let ours = rt.run_step(&spec.graph);
    assert_eq!(ours.nodes_executed, spec.graph.len());

    let catalog = OpCatalog::new(&spec.graph);
    let rec = TfExecutor::new(TfExecutorConfig {
        inter_op: 1,
        intra_op: 8,
    })
    .run_step(&spec.graph, &catalog, &cost);
    // On 8 cores there is little left to tune (optima sit near the machine
    // width) and co-run footprints are large fractions of the chip, so
    // interference can eat most of Strategy 3's margin; the runtime must
    // still stay within a few percent of the tuned-uniform baseline.
    assert!(
        ours.total_secs <= rec.total_secs * 1.08,
        "the runtime must stay near the baseline on a small machine: {} vs {}",
        ours.total_secs,
        rec.total_secs
    );
}

#[test]
fn runtime_schedules_on_a_128_core_machine() {
    let cost = machine(64); // 128 cores
    let spec = dcgan(8);
    let config = RuntimeConfig {
        hillclimb: nnrt::sched::HillClimbConfig {
            interval: 8,
            max_threads: 128,
            warm_seed: true,
        },
        default_intra: 128,
        ..RuntimeConfig::default()
    };
    let rt = Runtime::prepare(&spec.graph, cost, config);
    let report = rt.run_step(&spec.graph);
    assert_eq!(report.nodes_executed, spec.graph.len());
    assert!(report.total_secs.is_finite() && report.total_secs > 0.0);
}

#[test]
fn degenerate_graphs_run_everywhere() {
    for tiles in [1u32, 4, 34] {
        let cost = machine(tiles);
        let max = 2 * tiles;
        let config = RuntimeConfig {
            hillclimb: nnrt::sched::HillClimbConfig {
                interval: 2,
                max_threads: max,
                warm_seed: true,
            },
            default_intra: max,
            ..RuntimeConfig::default()
        };
        // Single op.
        let mut g = nnrt_graph::DataflowGraph::new();
        g.add_op(OpKind::Relu, Shape::vec1(1000), &[]);
        let report = Runtime::prepare(&g, cost.clone(), config).run_step(&g);
        assert_eq!(report.nodes_executed, 1);

        // Wide fan of 50 scalar-ish ops.
        let mut g = nnrt_graph::DataflowGraph::new();
        for _ in 0..50 {
            g.add_op(OpKind::Mul, Shape::scalar(), &[]);
        }
        let report = Runtime::prepare(&g, cost.clone(), config).run_step(&g);
        assert_eq!(report.nodes_executed, 50);

        // Deep chain of 50 ops.
        let mut g = nnrt_graph::DataflowGraph::new();
        let mut prev = None;
        for _ in 0..50 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_op(OpKind::Add, Shape::vec1(4096), &deps));
        }
        let report = Runtime::prepare(&g, cost.clone(), config).run_step(&g);
        assert_eq!(report.nodes_executed, 50);
    }
}

#[test]
fn empty_graph_runs_instantly_everywhere() {
    let g = nnrt_graph::DataflowGraph::new();
    let rt = Runtime::prepare(&g, machine(4), RuntimeConfig::default());
    let report = rt.run_step(&g);
    assert_eq!(report.total_secs, 0.0);
    assert_eq!(report.nodes_executed, 0);
}
