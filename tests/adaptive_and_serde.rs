//! Integration tests for the adaptive interference feedback (§III-D
//! discussion) and serde round-trips of the public data types.

use nnrt::prelude::*;
use nnrt_graph::{DataflowGraph, OpAux, OpInstance};

#[test]
fn adaptive_steps_never_regress_catastrophically() {
    // Run several adaptive steps on ResNet-50: denials may accumulate, and
    // the step time must stay in the same band (adaptation must not wreck
    // the schedule).
    let spec = resnet50(16);
    let mut rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    let (first, _) = rt.run_step_adaptive(&spec.graph);
    let mut last = first.total_secs;
    for _ in 0..3 {
        let (report, _new) = rt.run_step_adaptive(&spec.graph);
        last = report.total_secs;
    }
    assert!(
        last <= first.total_secs * 1.15,
        "adaptation must not slow the step down materially: {} -> {}",
        first.total_secs,
        last
    );
}

#[test]
fn feedback_denies_pairs_when_predictions_are_bad() {
    // Force bad predictions by directing the runtime with a model that
    // wildly underestimates everything: every co-run overlap then looks like
    // interference, and denials accumulate.
    use nnrt::manycore::SharingMode;
    use nnrt::sched::PerfModel;
    use nnrt_graph::OpKey;

    struct Underestimator;
    impl PerfModel for Underestimator {
        fn predict(&self, _key: &OpKey, _threads: u32, _mode: SharingMode) -> Option<f64> {
            Some(1e-7) // everything "should" take 0.1 us
        }
        fn best(&self, _key: &OpKey) -> Option<(u32, SharingMode, f64)> {
            Some((16, SharingMode::Compact, 1e-7))
        }
        fn candidates(&self, _key: &OpKey, _n: usize) -> Vec<(u32, SharingMode, f64)> {
            vec![
                (16, SharingMode::Compact, 1e-7),
                (12, SharingMode::Compact, 1.1e-7),
            ]
        }
    }

    let mut g = DataflowGraph::new();
    for _ in 0..6 {
        g.add(
            OpInstance::with_aux(
                OpKind::Conv2DBackpropFilter,
                Shape::nhwc(32, 8, 8, 384),
                OpAux::conv(3, 1, 384),
            ),
            &[],
        );
        g.add(
            OpInstance::new(OpKind::Tile, Shape::nhwc(32, 8, 8, 384)),
            &[],
        );
    }
    let mut rt = Runtime::prepare_with_model(
        &g,
        KnlCostModel::knl(),
        RuntimeConfig::default(),
        Box::new(Underestimator),
    );
    assert!(rt.feedback().is_empty());
    let (_, new_denials) = rt.run_step_adaptive(&g);
    assert!(
        new_denials > 0,
        "wild underestimates with overlapping kinds must produce denials"
    );
    assert!(!rt.feedback().is_empty());
}

#[test]
fn serde_roundtrips() {
    // DataflowGraph.
    let spec = dcgan(8);
    let json = serde_json::to_string(&spec.graph).unwrap();
    let back: DataflowGraph = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    assert_eq!(back.len(), spec.graph.len());
    assert_eq!(back.distinct_keys(), spec.graph.distinct_keys());

    // StepReport (with trace + timings).
    let mut rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    rt.record_trace(true);
    let report = rt.run_step(&spec.graph);
    let json = serde_json::to_string(&report).unwrap();
    let back: StepReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.total_secs, report.total_secs);
    assert_eq!(back.trace.len(), report.trace.len());
    assert_eq!(back.timings.len(), report.timings.len());

    // Configs and machine types.
    let cfg = RuntimeConfig::default();
    let back: RuntimeConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(back, cfg);
    let params = KnlParams::default();
    let back: KnlParams = serde_json::from_str(&serde_json::to_string(&params).unwrap()).unwrap();
    assert_eq!(back, params);
    let topo = Topology::knl();
    let back: Topology = serde_json::from_str(&serde_json::to_string(&topo).unwrap()).unwrap();
    assert_eq!(back, topo);
}

#[test]
fn chrome_trace_of_a_real_step_is_valid_json() {
    let spec = lstm(20);
    let mut rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    rt.record_trace(true);
    let report = rt.run_step(&spec.graph);
    let json = nnrt::sched::export_chrome_trace(&spec.graph, &report.timings);
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();
    assert_eq!(events.len(), spec.graph.len());
    // Every event has positive duration and a lane.
    for e in events {
        assert!(e["dur"].as_f64().unwrap() > 0.0);
        assert!(e["tid"].as_u64().unwrap() >= 1);
    }
}
