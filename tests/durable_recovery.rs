//! Durability integration tests: the write-ahead journal, the snapshot
//! consistency cut, and whole-process crash recovery.
//!
//! The centerpiece is the crash-point property test: a durable run is
//! recorded once, then recovery is exercised at *every* journal-record
//! boundary — each prefix is a legal `kill -9` instant, and from each one
//! the recovered fleet must complete exactly the jobs the journal had
//! admitted, with zero lost profile-store keys.

use nnrt::prelude::*;
use nnrt::serve::{
    replay, DurabilityConfig, Fleet, FleetConfig, JobSpec, JournalRecord, ProfileStore,
    RecoverError, StoreError, JOURNAL_FILE, SNAPSHOT_FILE,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A fresh scratch directory, unique per test invocation.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nnrt-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config_with(dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        node_count: 2,
        checkpoint_interval: 1,
        durability: dir.map(|dir| {
            let mut d = DurabilityConfig::new(dir);
            // No periodic flush: the journal alone carries the whole run,
            // so every record boundary is a meaningful crash point.
            d.flush_interval_secs = f64::INFINITY;
            d
        }),
        ..FleetConfig::default()
    }
}

fn submit_workload(fleet: &mut Fleet, jobs: usize) {
    let g = dcgan(4).graph;
    for i in 0..jobs {
        fleet
            .submit(JobSpec {
                name: format!("dcgan-{i}"),
                model: "dcgan".to_string(),
                graph: g.clone(),
                steps: 2,
                priority: (i % 2) as u8,
                weight: 1.0,
            })
            .expect("queue sized for the workload");
    }
}

/// Byte offsets of every record boundary in `bytes`, including 0 and the
/// full length.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0];
    let mut cursor = 0;
    while cursor < bytes.len() {
        let (_, used) =
            nnrt::serve::decode_record(&bytes[cursor..]).expect("recorded log is clean");
        cursor += used;
        offsets.push(cursor);
    }
    offsets
}

/// Records a complete durable run and returns
/// `(journal bytes, initial snapshot, baseline report JSON, job names,
/// final store snapshot)`. The journal is read *before* the final flush
/// rotates it, so it still holds the full transition history.
fn record_run(dir: &Path, jobs: usize) -> (Vec<u8>, String, String, BTreeSet<String>, String) {
    let mut fleet = Fleet::new(config_with(Some(dir.to_path_buf())));
    submit_workload(&mut fleet, jobs);
    while fleet.tick() {}
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal exists");
    let initial_snapshot =
        std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).expect("snapshot exists");
    let report = fleet.run();
    let names: BTreeSet<String> = report.jobs.iter().map(|j| j.name.clone()).collect();
    let store = fleet.store().snapshot();
    (journal, initial_snapshot, report.to_json(), names, store)
}

#[test]
fn fault_free_durable_run_is_byte_identical_to_plain() {
    let dir = tmpdir("identity");
    let mut plain = Fleet::new(config_with(None));
    submit_workload(&mut plain, 4);
    let plain_report = plain.run().to_json();

    let mut durable = Fleet::new(config_with(Some(dir.clone())));
    submit_workload(&mut durable, 4);
    let durable_report = durable.run().to_json();

    assert_eq!(
        plain_report, durable_report,
        "journaling must be observationally free: byte-identical reports"
    );
    // The durable run left a consistent cut behind: a snapshot plus a
    // compacted journal whose completes cover the whole workload.
    let bytes = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal exists");
    let log = replay(&bytes);
    assert!(log.torn.is_none(), "graceful shutdown leaves a clean tail");
    let completes = log
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Complete { .. }))
        .count();
    assert_eq!(
        completes, 4,
        "the final rotation re-records every completion"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_succeeds_at_every_journal_record_boundary() {
    let dir = tmpdir("crashpoints");
    let (journal, initial_snapshot, _, all_names, final_store) = record_run(&dir, 3);
    let boundaries = record_boundaries(&journal);
    assert!(boundaries.len() > 10, "the run must leave a real history");

    for (i, &cut) in boundaries.iter().enumerate() {
        let prefix = &journal[..cut];
        let crash_dir = tmpdir(&format!("crashpoint-{i}"));
        std::fs::write(crash_dir.join(JOURNAL_FILE), prefix).expect("write prefix");
        std::fs::write(crash_dir.join(SNAPSHOT_FILE), &initial_snapshot).expect("write snapshot");

        let (mut fleet, recovery) = Fleet::recover(config_with(Some(crash_dir.clone())))
            .unwrap_or_else(|e| panic!("crash point {i} (offset {cut}): recovery failed: {e}"));

        // Zero lost keys: the recovered store must hold exactly the
        // snapshot plus every journaled store_insert delta in the prefix.
        let expected_store = ProfileStore::new();
        expected_store
            .restore(&initial_snapshot)
            .expect("initial snapshot restores");
        for record in &replay(prefix).records {
            if let JournalRecord::StoreInsert { machine, profiles } = record {
                expected_store.insert_many(*machine, profiles);
            }
        }
        assert_eq!(
            fleet.store().snapshot(),
            expected_store.snapshot(),
            "crash point {i}: recovered store must match snapshot + WAL deltas"
        );

        // The merged completed set must be exactly the jobs this prefix
        // had admitted — no losses, no duplicates, no inventions.
        let admitted: BTreeSet<String> = replay(prefix)
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Admit { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        let prior: BTreeSet<String> = recovery
            .jobs_completed
            .iter()
            .map(|j| j.name.clone())
            .collect();
        let report = fleet.run();
        let resumed: BTreeSet<String> = report.jobs.iter().map(|j| j.name.clone()).collect();
        assert!(
            prior.is_disjoint(&resumed),
            "crash point {i}: a prior completion must not run again"
        );
        let merged: BTreeSet<String> = prior.union(&resumed).cloned().collect();
        assert_eq!(
            merged, admitted,
            "crash point {i}: merged completions must equal the admitted set"
        );
        std::fs::remove_dir_all(&crash_dir).ok();
    }

    // The final boundary is the full journal: recovery from it completes
    // the entire uninterrupted job set with the full store.
    let full_dir = tmpdir("crashpoint-full");
    std::fs::write(full_dir.join(JOURNAL_FILE), &journal).expect("write journal");
    std::fs::write(full_dir.join(SNAPSHOT_FILE), &initial_snapshot).expect("write snapshot");
    let (mut fleet, recovery) =
        Fleet::recover(config_with(Some(full_dir.clone()))).expect("full-journal recovery");
    let prior: BTreeSet<String> = recovery
        .jobs_completed
        .iter()
        .map(|j| j.name.clone())
        .collect();
    assert_eq!(prior, all_names, "every job had completed before the crash");
    assert_eq!(
        fleet.store().snapshot(),
        final_store,
        "zero lost profile-store keys after the full journal"
    );
    assert!(fleet.run().jobs.is_empty(), "nothing is left to re-run");
    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_deterministic() {
    let dir = tmpdir("determinism");
    let (journal, initial_snapshot, _, _, _) = record_run(&dir, 3);
    // Cut mid-history so recovery has real work: jobs to resume or requeue.
    let boundaries = record_boundaries(&journal);
    let cut = boundaries[boundaries.len() / 2];

    let run_recovery = |tag: &str| -> (String, String) {
        let d = tmpdir(tag);
        std::fs::write(d.join(JOURNAL_FILE), &journal[..cut]).expect("write prefix");
        std::fs::write(d.join(SNAPSHOT_FILE), &initial_snapshot).expect("write snapshot");
        let (mut fleet, recovery) =
            Fleet::recover(config_with(Some(d.clone()))).expect("recovery succeeds");
        let out = (recovery.to_json(), fleet.run().to_json());
        std::fs::remove_dir_all(&d).ok();
        out
    };
    let (recovery_a, report_a) = run_recovery("determinism-a");
    let (recovery_b, report_b) = run_recovery("determinism-b");
    assert_eq!(
        recovery_a, recovery_b,
        "identical RecoveryReport accounting"
    );
    assert_eq!(report_a, report_b, "identical recovered-run report");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_report_partitions_the_admitted_jobs() {
    let dir = tmpdir("partition");
    let (journal, initial_snapshot, _, _, _) = record_run(&dir, 3);
    for &cut in record_boundaries(&journal).iter() {
        let d = tmpdir("partition-cut");
        std::fs::write(d.join(JOURNAL_FILE), &journal[..cut]).expect("write prefix");
        std::fs::write(d.join(SNAPSHOT_FILE), &initial_snapshot).expect("write snapshot");
        let (_, recovery) =
            Fleet::recover(config_with(Some(d.clone()))).expect("recovery succeeds");

        let admitted: BTreeSet<u64> = replay(&journal[..cut])
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Admit { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let resumed: BTreeSet<u64> = recovery.jobs_resumed.iter().copied().collect();
        let requeued: BTreeSet<u64> = recovery.jobs_requeued.iter().copied().collect();
        let completed: BTreeSet<u64> = recovery.jobs_completed.iter().map(|j| j.id).collect();
        assert!(resumed.is_disjoint(&requeued));
        assert!(resumed.is_disjoint(&completed));
        assert!(requeued.is_disjoint(&completed));
        let union: BTreeSet<u64> = resumed
            .union(&requeued)
            .copied()
            .collect::<BTreeSet<u64>>()
            .union(&completed)
            .copied()
            .collect();
        assert_eq!(
            union, admitted,
            "resumed + requeued + completed must partition the admitted set"
        );
        std::fs::remove_dir_all(&d).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_snapshot_is_a_typed_corrupt_error() {
    let dir = tmpdir("torn-snapshot");
    let (_, initial_snapshot, _, _, _) = record_run(&dir, 2);
    // A mid-write crash without the atomic rename would leave a prefix of
    // valid JSON; the typed error is what distinguishes "corrupt" from
    // "absent" for the operator.
    let torn = &initial_snapshot[..initial_snapshot.len() / 2];
    let store = ProfileStore::new();
    match store.restore(torn) {
        Err(StoreError::Corrupt(_)) => {}
        other => panic!("truncated snapshot must be Corrupt, got {other:?}"),
    }

    // The same torn bytes fail recovery with the snapshot error wrapped.
    std::fs::write(dir.join(SNAPSHOT_FILE), torn).expect("write torn snapshot");
    match Fleet::recover(config_with(Some(dir.clone()))) {
        Err(RecoverError::Snapshot(StoreError::Corrupt(_))) => {}
        Ok(_) => panic!("recovery must reject a torn snapshot"),
        Err(other) => panic!("expected Snapshot(Corrupt), got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_journal_tail_is_discarded_with_exact_accounting() {
    let dir = tmpdir("torn-journal");
    let (journal, initial_snapshot, _, _, _) = record_run(&dir, 2);
    let boundaries = record_boundaries(&journal);
    // Flip one bit inside the last record's payload: everything before it
    // replays, the flipped record and the rest of the log are the torn
    // tail.
    let last = boundaries[boundaries.len() - 2];
    let mut bytes = journal.clone();
    bytes[last + 13] ^= 0x40;

    let d = tmpdir("torn-journal-run");
    std::fs::write(d.join(JOURNAL_FILE), &bytes).expect("write journal");
    std::fs::write(d.join(SNAPSHOT_FILE), &initial_snapshot).expect("write snapshot");
    let (_, recovery) =
        Fleet::recover(config_with(Some(d.clone()))).expect("torn tail must not block recovery");
    assert!(
        recovery.torn_tail.is_some(),
        "the flipped record is reported as a torn tail"
    );
    assert_eq!(
        recovery.torn_bytes_discarded,
        (bytes.len() - last) as u64,
        "discarded-byte accounting is exact"
    );
    assert_eq!(
        recovery.journal_records,
        boundaries.len() - 3,
        "every record before the flip replays (header excluded from count)"
    );
    std::fs::remove_dir_all(&d).ok();
    std::fs::remove_dir_all(&dir).ok();
}
