//! Determinism and budget guarantees of the parallel profiling pipeline.
//!
//! The sharded hill-climb pool must be invisible in every output: for any
//! worker count the fitted curves, the chrome traces, and the whole
//! `FleetReport` JSON are byte-identical to `profile_threads = 1`. Warm
//! seeding must live inside the same profiling budget as an unseeded climb
//! and degrade the exact same keys when the budget is starved.

use nnrt::manycore::{KnlCostModel, NoiseModel};
use nnrt::sched::{HillClimbConfig, HillClimbModel, Measurer, OpCatalog};
use nnrt::serve::{Fleet, FleetConfig, JobSpec, ProfileStore};
use proptest::prelude::*;
use std::sync::Arc;

/// A small mixed workload: two models, two jobs each, over two nodes.
fn workload() -> Vec<JobSpec> {
    let models = [
        ("resnet50", nnrt::models::resnet50(4).graph),
        ("dcgan", nnrt::models::dcgan(4).graph),
    ];
    (0..4)
        .map(|i| {
            let (model, graph) = &models[i % models.len()];
            JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: graph.clone(),
                steps: 2,
                priority: (i % 2) as u8,
                weight: 1.0,
            }
        })
        .collect()
}

/// Runs the workload on a fresh fleet and returns every observable output:
/// the report JSON (which embeds each job's chrome trace) and the store
/// snapshot (the fitted curves).
fn run_fleet(profile_threads: usize) -> (String, String) {
    let config = FleetConfig {
        node_count: 2,
        record_traces: true,
        profile_threads,
        ..FleetConfig::default()
    };
    let costs = (0..config.node_count)
        .map(|_| KnlCostModel::knl())
        .collect();
    let mut fleet = Fleet::with_cost_models(config, costs, Arc::new(ProfileStore::new()));
    for spec in workload() {
        fleet.submit(spec).expect("queue sized for the workload");
    }
    let report = fleet.run();
    for job in &report.jobs {
        assert!(
            job.chrome_trace.is_some(),
            "record_traces must attach a trace to every job"
        );
    }
    (report.to_json(), fleet.store().snapshot())
}

fn neighbor_fixtures() -> (HillClimbModel, OpCatalog, HillClimbConfig) {
    let base = OpCatalog::new(&nnrt::models::dcgan(8).graph);
    let cfg = HillClimbConfig {
        interval: 4,
        max_threads: 68,
        warm_seed: true,
    };
    let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
    let fitted = HillClimbModel::fit(&base, &mut measurer, cfg);
    let neighbor = OpCatalog::new(&nnrt::models::dcgan(16).graph);
    (fitted, neighbor, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any worker count produces the same bytes as the legacy serial path —
    /// curves, chrome traces, and the full report.
    #[test]
    fn any_worker_count_is_byte_identical_to_serial(threads in 2usize..=8) {
        let (serial_report, serial_curves) = run_fleet(1);
        let (report, curves) = run_fleet(threads);
        prop_assert_eq!(report, serial_report);
        prop_assert_eq!(curves, serial_curves);
    }

    /// Warm seeding never spends more than the budget allows: the model's
    /// profiling-step counter grows by at most `budget` regardless of how
    /// the climbs were seeded.
    #[test]
    fn warm_seeding_never_exceeds_the_profiling_budget(budget in 0u32..=24) {
        let (fitted, neighbor, cfg) = neighbor_fixtures();
        for warm_seed in [true, false] {
            let mut model = fitted.clone();
            let before = model.profiling_steps;
            let mut measurer =
                Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
            let outcome = model.fit_missing_budgeted(
                &neighbor,
                &mut measurer,
                HillClimbConfig { warm_seed, ..cfg },
                budget,
            );
            prop_assert!(
                model.profiling_steps - before <= budget,
                "seed={warm_seed}: spent {} of budget {budget}",
                model.profiling_steps - before
            );
            if budget < 2 {
                // No samples fit in the budget: every uncovered key degrades
                // and not a single measurement is taken.
                prop_assert_eq!(measurer.measurements_taken(), 0);
                prop_assert_eq!(outcome.new_keys, 0);
                prop_assert_eq!(outcome.steps_saved, 0);
            }
        }
    }
}

/// When the budget starves the climbs, seeding changes nothing: the same
/// keys degrade in the same order as the unseeded fit, and the fallback
/// plan downstream is therefore identical.
#[test]
fn starved_budget_degrades_identically_with_and_without_seeding() {
    let (fitted, neighbor, cfg) = neighbor_fixtures();
    for budget in [0u32, 1, 2, 4] {
        let mut seeded = fitted.clone();
        let mut unseeded = fitted.clone();
        let mut m1 = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
        let with_seed = seeded.fit_missing_budgeted(&neighbor, &mut m1, cfg, budget);
        let without = unseeded.fit_missing_budgeted(
            &neighbor,
            &mut m2,
            HillClimbConfig {
                warm_seed: false,
                ..cfg
            },
            budget,
        );
        assert_eq!(
            with_seed.degraded, without.degraded,
            "budget {budget}: seeded and unseeded fits must degrade the same keys"
        );
        assert_eq!(with_seed.new_keys, without.new_keys, "budget {budget}");
        assert_eq!(
            seeded.profiling_steps, unseeded.profiling_steps,
            "budget {budget}: cost accounting must not depend on seeding when \
             every climb is truncated"
        );
    }
}
