//! Integration tests of the `nnrt-serve` multi-tenant service:
//! submit → queue → warm-start → completion, determinism of steps and whole
//! fleet runs, Chrome-trace well-formedness, and profile-store persistence.

use nnrt::prelude::*;
use nnrt::serve::{AdmitError, Fleet, FleetConfig, FleetReport, JobSpec, ProfileStore, StoreError};
use std::sync::Arc;

fn job(name: &str, model: &str, graph: &nnrt::graph::DataflowGraph, priority: u8) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        model: model.to_string(),
        graph: graph.clone(),
        steps: 2,
        priority,
        weight: 1.0,
    }
}

/// A small mixed workload: two models, four jobs each.
fn submit_workload(fleet: &mut Fleet) {
    let dcgan = dcgan(4).graph;
    let lstm_g = lstm(4).graph;
    for i in 0..4 {
        fleet
            .submit(job(&format!("dcgan-{i}"), "dcgan", &dcgan, (i % 2) as u8))
            .unwrap();
        fleet
            .submit(job(&format!("lstm-{i}"), "lstm", &lstm_g, 0))
            .unwrap();
    }
}

fn run_fleet(seed: u64, record_traces: bool) -> FleetReport {
    let config = FleetConfig {
        node_count: 2,
        seed,
        record_traces,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(config);
    submit_workload(&mut fleet);
    fleet.run()
}

#[test]
fn submit_queue_warm_start_completion() {
    let report = run_fleet(7, false);
    assert_eq!(report.jobs.len(), 8, "every submitted job completes");
    assert_eq!(report.nodes, 2);
    assert!(report.makespan_secs > 0.0);
    assert!(report.steps_per_sec > 0.0);
    assert_eq!(report.total_steps, 16);

    // Jobs spread across both nodes.
    let nodes_used: std::collections::BTreeSet<u32> = report.jobs.iter().map(|j| j.node).collect();
    assert_eq!(nodes_used.len(), 2, "placement must use both nodes");

    // The first job of each model is cold; every later job of that model
    // warm-starts and skips at least half of the cold profiling cost
    // (in fact all of it: identical machines, identical keys).
    for model in ["dcgan", "lstm"] {
        let of_model: Vec<_> = report.jobs.iter().filter(|j| j.model == model).collect();
        assert_eq!(of_model.len(), 4);
        let cold_steps = of_model
            .iter()
            .map(|j| j.profiling_steps)
            .max()
            .expect("cold job profiles");
        assert!(cold_steps > 0, "{model}: someone must pay the cold profile");
        let warm: Vec<_> = of_model
            .iter()
            .filter(|j| j.profiling_steps < cold_steps)
            .collect();
        assert_eq!(warm.len(), 3, "{model}: three of four jobs warm-start");
        for j in warm {
            assert!(
                j.profiling_steps * 2 <= cold_steps,
                "{}: warm job must skip >=50% of the cold profile ({} vs {cold_steps})",
                j.name,
                j.profiling_steps
            );
            assert!(j.profiling_steps_saved >= cold_steps - j.profiling_steps);
            assert_eq!(
                j.warm_keys, j.total_keys,
                "identical machines share all keys"
            );
        }
    }
    assert!(report.profiling_steps_saved_total > 0);

    // The shared store ends up holding both models' keys.
    assert!(report.store_entries > 0);
}

#[test]
fn saturated_queue_rejects_with_typed_error() {
    let config = FleetConfig {
        queue_capacity: 2,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(config);
    let g = dcgan(4).graph;
    fleet.submit(job("a", "dcgan", &g, 0)).unwrap();
    fleet.submit(job("b", "dcgan", &g, 0)).unwrap();
    match fleet.submit(job("c", "dcgan", &g, 0)) {
        Err(
            err @ AdmitError::Saturated {
                queued: 2,
                capacity: 2,
                retry_after_secs,
            },
        ) => {
            assert!(
                retry_after_secs > 0.0,
                "the rejection must carry a concrete wait, got {retry_after_secs}"
            );
            assert!(
                err.to_string().contains("retry in ~"),
                "the message surfaces the hint: {err}"
            );
        }
        other => panic!("expected saturation, got {other:?}"),
    }
    let report = fleet.run();
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.rejected, 1);
}

#[test]
fn heterogeneous_fleet_keeps_curves_per_signature() {
    use nnrt::manycore::MachineSignature;

    // Two genuinely different machines: the stock KNL and a derated one.
    let fast = KnlCostModel::knl();
    let mut derated = KnlParams::default();
    derated.mcdram_bw *= 0.5;
    derated.core_peak_flops *= 0.75;
    let slow = KnlCostModel::new(Topology::knl(), derated);
    let sig_fast = fast.signature();
    let sig_slow = slow.signature();
    assert_ne!(
        sig_fast, sig_slow,
        "distinct calibrations must fingerprint differently"
    );

    let config = FleetConfig {
        node_count: 2,
        max_jobs_per_node: 1,
        ..FleetConfig::default()
    };
    let store = Arc::new(ProfileStore::new());
    let mut fleet = Fleet::with_cost_models(config, vec![fast, slow], Arc::clone(&store));
    let g = dcgan(4).graph;
    for i in 0..4 {
        fleet
            .submit(job(&format!("dcgan-{i}"), "dcgan", &g, 0))
            .unwrap();
    }
    let report = fleet.run();
    assert_eq!(report.jobs.len(), 4);
    let nodes_used: std::collections::BTreeSet<u32> = report.jobs.iter().map(|j| j.node).collect();
    assert_eq!(nodes_used.len(), 2, "both machines serve jobs");

    // Each signature accumulates its own curves in the shared store, and an
    // unseen machine sees none of them.
    let keys = g.distinct_keys();
    assert!(!store.lookup(sig_fast, &keys).is_empty());
    assert!(!store.lookup(sig_slow, &keys).is_empty());
    assert!(
        store.lookup(MachineSignature(0xDEAD), &keys).is_empty(),
        "curves must never leak to a machine that did not measure them"
    );

    // The first job on each node pays its own cold profile: curves measured
    // on the other machine must not warm-start it.
    for node in [0u32, 1] {
        let first = report
            .jobs
            .iter()
            .filter(|j| j.node == node)
            .min_by(|a, b| a.completed_at.partial_cmp(&b.completed_at).unwrap())
            .expect("both nodes complete jobs");
        assert!(
            first.profiling_steps > 0,
            "{}: node {node}'s first job cannot warm-start across signatures",
            first.name
        );
        assert_eq!(
            first.warm_keys, 0,
            "{}: no cross-signature warm keys",
            first.name
        );
    }
}

#[test]
fn fleet_runs_are_bit_identical_under_one_seed() {
    let a = run_fleet(42, false);
    let b = run_fleet(42, false);
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    assert_eq!(
        ja, jb,
        "same seed, same workload => bit-identical fleet report"
    );

    let c = run_fleet(43, false);
    assert_ne!(
        serde_json::to_string(&c).unwrap(),
        ja,
        "a different seed must perturb the simulated times"
    );
}

#[test]
fn run_step_is_bit_identical_under_one_seed() {
    let g = dcgan(4).graph;
    let config = RuntimeConfig::default();
    let mut rt1 = Runtime::prepare(&g, KnlCostModel::knl(), config);
    let mut rt2 = Runtime::prepare(&g, KnlCostModel::knl(), config);
    rt1.record_trace(true);
    rt2.record_trace(true);
    let r1 = rt1.run_step(&g);
    let r2 = rt2.run_step(&g);
    assert_eq!(
        r1.total_secs, r2.total_secs,
        "bit-identical, not approximately equal"
    );
    assert_eq!(r1.timings.len(), g.len(), "tracing records every node");
    assert_eq!(r1.timings.len(), r2.timings.len());
    for (a, b) in r1.timings.iter().zip(&r2.timings) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.finish, b.finish);
    }
    // Repeated steps of one runtime are pure too.
    let r3 = rt1.run_step(&g);
    assert_eq!(r1.total_secs, r3.total_secs);
}

/// Minimal Chrome-trace event checks shared by the trace tests.
fn assert_trace_well_formed(trace: &str, graph: &nnrt::graph::DataflowGraph) {
    let v: serde_json::Value = serde_json::from_str(trace).expect("trace parses as JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), graph.len(), "one complete event per node");

    // (ts, dur) per graph node, for the dependency check below.
    let mut span_of = vec![None; graph.len()];
    for e in events {
        assert_eq!(e["ph"], "X", "complete events");
        let ts = e["ts"].as_f64().expect("numeric ts");
        let dur = e["dur"].as_f64().expect("numeric dur");
        assert!(ts >= 0.0, "ts must be non-negative, got {ts}");
        assert!(dur >= 0.0, "dur must be non-negative, got {dur}");
        assert!(e["name"].as_str().is_some());
        assert!(e["tid"].as_u64().is_some());
        let node = e["args"]["node"].as_u64().expect("node id in args") as usize;
        assert!(
            span_of[node].replace((ts, dur)).is_none(),
            "node {node} appears once"
        );
    }

    // Dependency safety: a node may not start before each predecessor ends.
    // ts/dur are microseconds formatted with 3 decimals; allow that rounding.
    for (id, _) in graph.iter() {
        let (ts, _) = span_of[id.0 as usize].expect("every node traced");
        for p in graph.preds(id) {
            let (pts, pdur) = span_of[p.0 as usize].unwrap();
            assert!(
                ts >= pts + pdur - 2e-3,
                "node {} starts at {ts}us before its predecessor {} ends at {}us",
                id.0,
                p.0,
                pts + pdur
            );
        }
    }
}

#[test]
fn export_chrome_trace_is_well_formed_and_dependency_safe() {
    let g = lstm(4).graph;
    let mut rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
    rt.record_trace(true);
    let report = rt.run_step(&g);
    let trace = nnrt::sched::export_chrome_trace(&g, &report.timings);
    assert_trace_well_formed(&trace, &g);
}

#[test]
fn fleet_traces_are_well_formed_per_job() {
    let report = run_fleet(7, true);
    let dcgan_g = dcgan(4).graph;
    let lstm_g = lstm(4).graph;
    for j in &report.jobs {
        let trace = j.chrome_trace.as_ref().expect("tracing was on");
        let graph = if j.model == "dcgan" {
            &dcgan_g
        } else {
            &lstm_g
        };
        assert_trace_well_formed(trace, graph);
    }
}

#[test]
fn store_snapshot_survives_a_service_restart() {
    // First service lifetime: cold fleet populates the store.
    let config = FleetConfig {
        node_count: 2,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(config.clone());
    submit_workload(&mut fleet);
    let first = fleet.run();
    assert!(first.profiling_steps_total > 0);
    let snapshot = fleet.store().snapshot();

    // Restart: a new fleet restores the snapshot; nobody profiles again.
    let store = Arc::new(ProfileStore::new());
    store.restore(&snapshot).expect("own snapshot restores");
    let costs = (0..2).map(|_| KnlCostModel::knl()).collect();
    let mut fleet2 = Fleet::with_cost_models(config, costs, store);
    submit_workload(&mut fleet2);
    let second = fleet2.run();
    assert_eq!(
        second.profiling_steps_total, 0,
        "warm restart skips all profiling"
    );
    assert!(second.makespan_secs < first.makespan_secs);

    // The store's own counters tell the same story: the cold lifetime
    // misses (first lookups find nothing), the warm restart hits.
    assert!(
        first.store_misses > 0,
        "cold fleet must miss on first lookups"
    );
    assert!(
        second.store_hits > 0,
        "warm restart must hit the restored store"
    );
    let hit_rate = second.store_hits as f64 / (second.store_hits + second.store_misses) as f64;
    assert!(
        hit_rate > 0.0,
        "warm restart hit rate must be positive, got {hit_rate}"
    );
    assert_eq!(
        second.store_misses, 0,
        "identical machines + full snapshot leave nothing to miss"
    );

    // Snapshot -> restore -> snapshot is byte-identical.
    let again = ProfileStore::new();
    again.restore(&snapshot).unwrap();
    assert_eq!(snapshot, again.snapshot());

    // Corruption and version skew fail with typed errors, not panics.
    assert!(matches!(again.restore("]["), Err(StoreError::Corrupt(_))));
    let skewed = snapshot.replacen("\"version\": 1", "\"version\": 7", 1);
    assert!(matches!(
        again.restore(&skewed),
        Err(StoreError::VersionMismatch { found: 7, .. })
    ));
}
