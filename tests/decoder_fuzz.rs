//! Adversarial-bytes fuzzing for the two wire decoders: the RPC frame
//! reader and the journal record decoder. The contract under fuzz is the
//! same for both: arbitrary truncation or corruption of valid bytes yields
//! a *typed* error — never a panic, and never a silently wrong record.

use nnrt::rpc::{read_frame, FrameError, Request};
use nnrt::serve::{decode_record, encode_record, replay, JournalRecord};
use proptest::prelude::*;

/// Valid journal records spanning every non-graph-carrying payload shape
/// (ids, floats, strings, empty vectors). `Admit` carries a full dataflow
/// graph and is exercised by the round-trip tests in the journal module;
/// fuzzing bit flips does not need multi-kilobyte payloads.
fn arb_name() -> sample::Select<&'static str> {
    sample::select(vec![
        "",
        "dcgan-0",
        "résumé \"x\"\\n",
        "a-very-long-job-name-indeed",
    ])
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    let id = 0u64..=u64::MAX;
    let small = 0u32..=u32::MAX;
    let finite = 0.0f64..1e9;
    prop_oneof![
        (id.clone(), arb_name()).prop_map(|(version, format)| JournalRecord::Header {
            format: format.to_string(),
            version
        }),
        (id.clone(), small.clone()).prop_map(|(id, node)| JournalRecord::Place { id, node }),
        (id.clone(), small.clone(), finite.clone()).prop_map(|(id, steps_done, at)| {
            JournalRecord::Checkpoint {
                id,
                steps_done,
                at,
                fitted_keys: Vec::new(),
            }
        }),
        (id.clone(), finite.clone()).prop_map(|(id, at)| JournalRecord::Evict { id, at }),
        (id.clone(), small.clone()).prop_map(|(id, node)| JournalRecord::Retry { id, node }),
        (id, arb_name(), arb_name(), small.clone(), small, finite).prop_map(
            |(id, name, model, steps, node, at)| JournalRecord::Complete {
                id,
                name: name.to_string(),
                model: model.to_string(),
                steps,
                node,
                at
            }
        ),
    ]
}

proptest! {
    /// Arbitrary garbage through the record decoder and the replay loop:
    /// typed results only, no panics.
    #[test]
    fn journal_decoder_survives_arbitrary_bytes(bytes in collection::vec(0u8..=255, 0..256)) {
        let _ = decode_record(&bytes);
        let rep = replay(&bytes);
        prop_assert!(rep.discarded_bytes <= bytes.len());
        // Random bytes essentially never carry a valid checksum, so the
        // replay must report the input as a torn tail, not invent records.
        if !bytes.is_empty() && rep.records.is_empty() {
            prop_assert!(rep.torn.is_some());
            prop_assert_eq!(rep.discarded_bytes, bytes.len());
        }
    }

    /// Every proper prefix of a valid record is a typed truncation-class
    /// error, never a success and never a panic.
    #[test]
    fn truncated_journal_record_is_a_typed_error(rec in arb_record(), cut in 0.0f64..1.0) {
        let bytes = encode_record(&rec);
        let cut = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(decode_record(&bytes[..cut]).is_err());
    }

    /// A single flipped bit anywhere in a valid record either surfaces as a
    /// typed error or decodes to the exact original — never to a silently
    /// different record.
    #[test]
    fn bit_flipped_journal_record_is_never_silently_wrong(
        rec in arb_record(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let original = encode_record(&rec);
        let mut bytes = original.clone();
        let pos = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        match decode_record(&bytes) {
            Err(_) => {}
            Ok((decoded, used)) => {
                prop_assert_eq!(&decoded, &rec, "flip at byte {} bit {}", pos, bit);
                prop_assert_eq!(used, original.len());
            }
        }
    }

    /// Arbitrary garbage through the RPC frame reader: typed `FrameError`
    /// only, and a salvaged payload never panics the request decoder.
    #[test]
    fn rpc_frame_reader_survives_arbitrary_bytes(bytes in collection::vec(0u8..=255, 0..256)) {
        let mut cursor = std::io::Cursor::new(bytes);
        if let Ok(payload) = read_frame(&mut cursor) {
            let _ = nnrt::rpc::decode::<Request>(&payload);
        }
    }

    /// Every proper prefix of a valid frame fails with the I/O (truncation)
    /// error class — the stream just ended mid-frame.
    #[test]
    fn truncated_rpc_frame_is_a_typed_error(steps in 0u32..=u32::MAX, cut in 0.0f64..1.0) {
        let mut frame = Vec::new();
        nnrt::rpc::write_frame(
            &mut frame,
            &nnrt::rpc::encode(&Request::Status { job_id: steps as u64 }),
        ).expect("vec write");
        let cut = ((frame.len() as f64) * cut) as usize;
        prop_assert!(cut < frame.len());
        let mut cursor = std::io::Cursor::new(&frame[..cut]);
        let result = read_frame(&mut cursor);
        prop_assert!(matches!(result, Err(FrameError::Io(_))));
    }
}
