//! Property-based integration tests: random dataflow graphs must execute
//! legally and completely under every executor, and random co-run workloads
//! must conserve work in the engine.

use nnrt::prelude::*;
use nnrt::sched::OpCatalog;
use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance};
use proptest::prelude::*;

/// A random DAG of 1..=40 ops drawn from a mixed catalog; edges only point
/// backward, so the graph is valid by construction.
fn arb_graph() -> impl Strategy<Value = DataflowGraph> {
    let kinds = prop_oneof![
        Just(OpKind::Conv2D),
        Just(OpKind::Conv2DBackpropFilter),
        Just(OpKind::MatMul),
        Just(OpKind::Relu),
        Just(OpKind::Tile),
        Just(OpKind::ApplyAdam),
        Just(OpKind::BiasAddGrad),
    ];
    let node = (kinds, 1usize..=64, 1usize..=32, 0usize..=3);
    proptest::collection::vec(node, 1..=40).prop_map(|nodes| {
        let mut g = DataflowGraph::new();
        for (i, (kind, a, b, ndeps)) in nodes.into_iter().enumerate() {
            let shape = Shape::nhwc(4, a, a, b * 8);
            let deps: Vec<NodeId> = (0..ndeps.min(i))
                .map(|d| NodeId(((i * 7 + d * 13) % i.max(1)) as u32))
                .collect();
            let mut deps = deps;
            deps.sort_unstable();
            deps.dedup();
            g.add(
                OpInstance::with_aux(kind, shape, OpAux::conv(3, 1, b * 8)),
                &deps,
            );
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn runtime_executes_every_random_graph(g in arb_graph()) {
        let cfg = RuntimeConfig {
            hillclimb: nnrt::sched::HillClimbConfig {
                interval: 8,
                max_threads: 68,
                warm_seed: true,
            },
            ..RuntimeConfig::default()
        };
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), cfg);
        let report = rt.run_step(&g);
        prop_assert_eq!(report.nodes_executed, g.len());
        prop_assert!(report.total_secs.is_finite());
        prop_assert!(report.total_secs >= 0.0);
    }

    #[test]
    fn baseline_and_runtime_run_the_same_ops(g in arb_graph()) {
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
        prop_assert_eq!(rec.nodes_executed, g.len());
        let per_kind: usize = rec.per_kind.iter().map(|&(_, _, n)| n).sum();
        prop_assert_eq!(per_kind, g.len());
    }

    #[test]
    fn step_time_dominates_critical_path_and_bounded_by_serial(g in arb_graph()) {
        // The step can never beat the critical path's best-case time, nor
        // lose to fully serial execution at planned thread counts by more
        // than the interference margin.
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let serial_sum: f64 = g
            .iter()
            .map(|(id, _)| {
                nnrt::manycore::CostModel::solo_time(
                    &cost,
                    catalog.profile(id),
                    68,
                    nnrt::manycore::SharingMode::Compact,
                )
            })
            .sum();
        let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
        prop_assert!((rec.total_secs - serial_sum).abs() < serial_sum * 1e-9 + 1e-12,
            "inter=1 must be exactly serial: {} vs {}", rec.total_secs, serial_sum);
    }

    #[test]
    fn engine_conserves_work_for_isolated_jobs(
        durations in proptest::collection::vec(1e-5f64..1e-2, 1..=8)
    ) {
        // Non-interfering jobs (no memory pressure, no shared cores, no
        // cache footprint) finish exactly at their nominal durations.
        use nnrt::manycore::{Engine, PlacementRequest, SharingMode, Topology, WorkProfile, KnlParams};
        let mut e = Engine::new(Topology::knl(), KnlParams::default());
        let mut profile = WorkProfile::compute_bound(1e8);
        profile.mem_intensity = 0.0;
        profile.cache_pressure = 0.0;
        let jobs: Vec<_> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                e.launch(profile, d, &PlacementRequest::primary(8, SharingMode::Compact), i as u64)
                    .unwrap()
            })
            .collect();
        prop_assert_eq!(jobs.len(), durations.len());
        let outcomes = e.drain();
        for o in outcomes {
            let expected = durations[o.tag as usize];
            prop_assert!(((o.finish - o.start) - expected).abs() < 1e-12);
        }
    }
}
