/root/repo/target/release/deps/nnrt-aca1bb6b8ad8d0e4.d: src/lib.rs

/root/repo/target/release/deps/nnrt-aca1bb6b8ad8d0e4: src/lib.rs

src/lib.rs:
