/root/repo/target/release/deps/calibrate-313894b52ecd8525.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-313894b52ecd8525: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
