/root/repo/target/release/deps/nnrt_bench-c7f6571f51b6a9df.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libnnrt_bench-c7f6571f51b6a9df.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libnnrt_bench-c7f6571f51b6a9df.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
