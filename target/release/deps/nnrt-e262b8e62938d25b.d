/root/repo/target/release/deps/nnrt-e262b8e62938d25b.d: src/bin/nnrt.rs

/root/repo/target/release/deps/nnrt-e262b8e62938d25b: src/bin/nnrt.rs

src/bin/nnrt.rs:
