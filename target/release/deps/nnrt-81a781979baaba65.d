/root/repo/target/release/deps/nnrt-81a781979baaba65.d: src/lib.rs

/root/repo/target/release/deps/libnnrt-81a781979baaba65.rlib: src/lib.rs

/root/repo/target/release/deps/libnnrt-81a781979baaba65.rmeta: src/lib.rs

src/lib.rs:
