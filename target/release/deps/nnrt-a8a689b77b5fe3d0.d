/root/repo/target/release/deps/nnrt-a8a689b77b5fe3d0.d: src/lib.rs

/root/repo/target/release/deps/libnnrt-a8a689b77b5fe3d0.rlib: src/lib.rs

/root/repo/target/release/deps/libnnrt-a8a689b77b5fe3d0.rmeta: src/lib.rs

src/lib.rs:
