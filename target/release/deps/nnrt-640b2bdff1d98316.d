/root/repo/target/release/deps/nnrt-640b2bdff1d98316.d: src/lib.rs

/root/repo/target/release/deps/libnnrt-640b2bdff1d98316.rlib: src/lib.rs

/root/repo/target/release/deps/libnnrt-640b2bdff1d98316.rmeta: src/lib.rs

src/lib.rs:
