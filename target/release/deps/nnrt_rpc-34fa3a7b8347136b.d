/root/repo/target/release/deps/nnrt_rpc-34fa3a7b8347136b.d: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/release/deps/libnnrt_rpc-34fa3a7b8347136b.rlib: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/release/deps/libnnrt_rpc-34fa3a7b8347136b.rmeta: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

crates/rpc/src/lib.rs:
crates/rpc/src/client.rs:
crates/rpc/src/protocol.rs:
crates/rpc/src/server.rs:
