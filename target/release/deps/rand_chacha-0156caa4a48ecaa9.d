/root/repo/target/release/deps/rand_chacha-0156caa4a48ecaa9.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-0156caa4a48ecaa9.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-0156caa4a48ecaa9.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
