/root/repo/target/release/deps/nnrt_manycore-08a2774a6d7165c8.d: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

/root/repo/target/release/deps/libnnrt_manycore-08a2774a6d7165c8.rlib: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

/root/repo/target/release/deps/libnnrt_manycore-08a2774a6d7165c8.rmeta: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

crates/manycore/src/lib.rs:
crates/manycore/src/cost.rs:
crates/manycore/src/engine.rs:
crates/manycore/src/error.rs:
crates/manycore/src/health.rs:
crates/manycore/src/noise.rs:
crates/manycore/src/placement.rs:
crates/manycore/src/signature.rs:
crates/manycore/src/topology.rs:
crates/manycore/src/workload.rs:
