/root/repo/target/release/deps/nnrt_rpc-e63b3da621068345.d: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/release/deps/libnnrt_rpc-e63b3da621068345.rlib: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/release/deps/libnnrt_rpc-e63b3da621068345.rmeta: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

crates/rpc/src/lib.rs:
crates/rpc/src/client.rs:
crates/rpc/src/protocol.rs:
crates/rpc/src/server.rs:
