/root/repo/target/release/deps/micro_criterion-f124425902b7a2ba.d: crates/bench/benches/micro_criterion.rs

/root/repo/target/release/deps/micro_criterion-f124425902b7a2ba: crates/bench/benches/micro_criterion.rs

crates/bench/benches/micro_criterion.rs:
