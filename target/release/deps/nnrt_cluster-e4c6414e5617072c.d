/root/repo/target/release/deps/nnrt_cluster-e4c6414e5617072c.d: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/release/deps/libnnrt_cluster-e4c6414e5617072c.rlib: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/release/deps/libnnrt_cluster-e4c6414e5617072c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

crates/cluster/src/lib.rs:
crates/cluster/src/data_parallel.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/model_parallel.rs:
