/root/repo/target/release/deps/nnrt_serve-c065d11f9dbbf6dc.d: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/release/deps/libnnrt_serve-c065d11f9dbbf6dc.rlib: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/release/deps/libnnrt_serve-c065d11f9dbbf6dc.rmeta: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/chaos.rs:
crates/serve/src/checkpoint.rs:
crates/serve/src/fleet.rs:
crates/serve/src/job.rs:
crates/serve/src/store.rs:
