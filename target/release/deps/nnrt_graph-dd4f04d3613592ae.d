/root/repo/target/release/deps/nnrt_graph-dd4f04d3613592ae.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/release/deps/libnnrt_graph-dd4f04d3613592ae.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/release/deps/libnnrt_graph-dd4f04d3613592ae.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/ops.rs:
crates/graph/src/profile.rs:
crates/graph/src/shape.rs:
