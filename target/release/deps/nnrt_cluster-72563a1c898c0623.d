/root/repo/target/release/deps/nnrt_cluster-72563a1c898c0623.d: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/release/deps/libnnrt_cluster-72563a1c898c0623.rlib: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/release/deps/libnnrt_cluster-72563a1c898c0623.rmeta: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

crates/cluster/src/lib.rs:
crates/cluster/src/data_parallel.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/model_parallel.rs:
