/root/repo/target/release/deps/serve_rpc-5b94d46d26a203dd.d: crates/bench/benches/serve_rpc.rs

/root/repo/target/release/deps/serve_rpc-5b94d46d26a203dd: crates/bench/benches/serve_rpc.rs

crates/bench/benches/serve_rpc.rs:
