/root/repo/target/release/deps/nnrt-339b11c7254dbcc7.d: src/lib.rs

/root/repo/target/release/deps/libnnrt-339b11c7254dbcc7.rlib: src/lib.rs

/root/repo/target/release/deps/libnnrt-339b11c7254dbcc7.rmeta: src/lib.rs

src/lib.rs:
