/root/repo/target/release/deps/nnrt_counters-f3ea92170f763263.d: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/release/deps/libnnrt_counters-f3ea92170f763263.rlib: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/release/deps/libnnrt_counters-f3ea92170f763263.rmeta: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

crates/counters/src/lib.rs:
crates/counters/src/events.rs:
crates/counters/src/features.rs:
crates/counters/src/sampler.rs:
