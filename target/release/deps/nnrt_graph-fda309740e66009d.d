/root/repo/target/release/deps/nnrt_graph-fda309740e66009d.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/release/deps/libnnrt_graph-fda309740e66009d.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/release/deps/libnnrt_graph-fda309740e66009d.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/ops.rs:
crates/graph/src/profile.rs:
crates/graph/src/shape.rs:
