/root/repo/target/release/deps/nnrt_bench-ffe63569013bc316.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libnnrt_bench-ffe63569013bc316.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libnnrt_bench-ffe63569013bc316.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
