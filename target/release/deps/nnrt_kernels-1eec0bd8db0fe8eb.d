/root/repo/target/release/deps/nnrt_kernels-1eec0bd8db0fe8eb.d: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

/root/repo/target/release/deps/libnnrt_kernels-1eec0bd8db0fe8eb.rlib: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

/root/repo/target/release/deps/libnnrt_kernels-1eec0bd8db0fe8eb.rmeta: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

crates/kernels/src/lib.rs:
crates/kernels/src/autotune.rs:
crates/kernels/src/batchnorm.rs:
crates/kernels/src/conv.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/im2col.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/pool.rs:
crates/kernels/src/pooling.rs:
crates/kernels/src/softmax.rs:
crates/kernels/src/tensor.rs:
