/root/repo/target/release/deps/nnrt_gpu-319cd8416124a71f.d: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/release/deps/libnnrt_gpu-319cd8416124a71f.rlib: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/release/deps/libnnrt_gpu-319cd8416124a71f.rmeta: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

crates/gpu/src/lib.rs:
crates/gpu/src/model.rs:
crates/gpu/src/ops.rs:
crates/gpu/src/streams.rs:
crates/gpu/src/tuner.rs:
