/root/repo/target/release/deps/calibrate-3f50d8899e45f4a7.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-3f50d8899e45f4a7: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
