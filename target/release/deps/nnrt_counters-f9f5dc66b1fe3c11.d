/root/repo/target/release/deps/nnrt_counters-f9f5dc66b1fe3c11.d: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/release/deps/libnnrt_counters-f9f5dc66b1fe3c11.rlib: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/release/deps/libnnrt_counters-f9f5dc66b1fe3c11.rmeta: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

crates/counters/src/lib.rs:
crates/counters/src/events.rs:
crates/counters/src/features.rs:
crates/counters/src/sampler.rs:
