/root/repo/target/release/deps/rand_chacha-1ffa96dc892bd50d.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-1ffa96dc892bd50d.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-1ffa96dc892bd50d.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
