/root/repo/target/release/deps/nnrt-a0e38bb2d2ed60b9.d: src/bin/nnrt.rs

/root/repo/target/release/deps/nnrt-a0e38bb2d2ed60b9: src/bin/nnrt.rs

src/bin/nnrt.rs:
