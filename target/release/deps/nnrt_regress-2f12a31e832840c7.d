/root/repo/target/release/deps/nnrt_regress-2f12a31e832840c7.d: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs

/root/repo/target/release/deps/libnnrt_regress-2f12a31e832840c7.rlib: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs

/root/repo/target/release/deps/libnnrt_regress-2f12a31e832840c7.rmeta: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs

crates/regress/src/lib.rs:
crates/regress/src/feature_select.rs:
crates/regress/src/gbrt.rs:
crates/regress/src/knn.rs:
crates/regress/src/linalg.rs:
crates/regress/src/metrics.rs:
crates/regress/src/ols.rs:
crates/regress/src/par.rs:
crates/regress/src/theilsen.rs:
crates/regress/src/tree.rs:
