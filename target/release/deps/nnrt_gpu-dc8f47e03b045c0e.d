/root/repo/target/release/deps/nnrt_gpu-dc8f47e03b045c0e.d: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/release/deps/libnnrt_gpu-dc8f47e03b045c0e.rlib: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/release/deps/libnnrt_gpu-dc8f47e03b045c0e.rmeta: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

crates/gpu/src/lib.rs:
crates/gpu/src/model.rs:
crates/gpu/src/ops.rs:
crates/gpu/src/streams.rs:
crates/gpu/src/tuner.rs:
