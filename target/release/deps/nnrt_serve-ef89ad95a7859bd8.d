/root/repo/target/release/deps/nnrt_serve-ef89ad95a7859bd8.d: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/release/deps/libnnrt_serve-ef89ad95a7859bd8.rlib: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/release/deps/libnnrt_serve-ef89ad95a7859bd8.rmeta: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/chaos.rs:
crates/serve/src/checkpoint.rs:
crates/serve/src/fleet.rs:
crates/serve/src/job.rs:
crates/serve/src/store.rs:
