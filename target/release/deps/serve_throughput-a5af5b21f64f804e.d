/root/repo/target/release/deps/serve_throughput-a5af5b21f64f804e.d: crates/bench/benches/serve_throughput.rs

/root/repo/target/release/deps/serve_throughput-a5af5b21f64f804e: crates/bench/benches/serve_throughput.rs

crates/bench/benches/serve_throughput.rs:
