/root/repo/target/release/deps/chaos_recovery-bfd4cac5c0e13bb3.d: crates/bench/benches/chaos_recovery.rs

/root/repo/target/release/deps/chaos_recovery-bfd4cac5c0e13bb3: crates/bench/benches/chaos_recovery.rs

crates/bench/benches/chaos_recovery.rs:
