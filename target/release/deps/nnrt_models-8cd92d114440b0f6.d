/root/repo/target/release/deps/nnrt_models-8cd92d114440b0f6.d: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs

/root/repo/target/release/deps/libnnrt_models-8cd92d114440b0f6.rlib: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs

/root/repo/target/release/deps/libnnrt_models-8cd92d114440b0f6.rmeta: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs

crates/models/src/lib.rs:
crates/models/src/common.rs:
crates/models/src/datasets.rs:
crates/models/src/dcgan.rs:
crates/models/src/inception.rs:
crates/models/src/lstm.rs:
crates/models/src/resnet.rs:
crates/models/src/transformer.rs:
