/root/repo/target/release/deps/nnrt-faacb49f282c667d.d: src/bin/nnrt.rs

/root/repo/target/release/deps/nnrt-faacb49f282c667d: src/bin/nnrt.rs

src/bin/nnrt.rs:
