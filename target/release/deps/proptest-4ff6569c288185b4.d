/root/repo/target/release/deps/proptest-4ff6569c288185b4.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4ff6569c288185b4.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4ff6569c288185b4.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
