/root/repo/target/release/deps/nnrt-9e55cc8e5c8bb33d.d: src/bin/nnrt.rs

/root/repo/target/release/deps/nnrt-9e55cc8e5c8bb33d: src/bin/nnrt.rs

src/bin/nnrt.rs:
