/root/repo/target/debug/examples/resnet_training-39bd9c061599e8e0.d: examples/resnet_training.rs

/root/repo/target/debug/examples/resnet_training-39bd9c061599e8e0: examples/resnet_training.rs

examples/resnet_training.rs:
