/root/repo/target/debug/examples/autotune_kernels-1b5ff4ba7aad6ffa.d: examples/autotune_kernels.rs

/root/repo/target/debug/examples/autotune_kernels-1b5ff4ba7aad6ffa: examples/autotune_kernels.rs

examples/autotune_kernels.rs:
