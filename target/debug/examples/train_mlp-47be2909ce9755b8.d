/root/repo/target/debug/examples/train_mlp-47be2909ce9755b8.d: examples/train_mlp.rs

/root/repo/target/debug/examples/train_mlp-47be2909ce9755b8: examples/train_mlp.rs

examples/train_mlp.rs:
