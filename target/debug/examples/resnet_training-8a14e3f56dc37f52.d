/root/repo/target/debug/examples/resnet_training-8a14e3f56dc37f52.d: examples/resnet_training.rs Cargo.toml

/root/repo/target/debug/examples/libresnet_training-8a14e3f56dc37f52.rmeta: examples/resnet_training.rs Cargo.toml

examples/resnet_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
