/root/repo/target/debug/examples/quickstart-5fe55229acb7556b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5fe55229acb7556b: examples/quickstart.rs

examples/quickstart.rs:
