/root/repo/target/debug/examples/train_mlp-bdd9aa623bce4d88.d: examples/train_mlp.rs

/root/repo/target/debug/examples/train_mlp-bdd9aa623bce4d88: examples/train_mlp.rs

examples/train_mlp.rs:
