/root/repo/target/debug/examples/gpu_study-ab9ab73918207f38.d: examples/gpu_study.rs

/root/repo/target/debug/examples/gpu_study-ab9ab73918207f38: examples/gpu_study.rs

examples/gpu_study.rs:
