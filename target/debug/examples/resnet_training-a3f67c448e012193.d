/root/repo/target/debug/examples/resnet_training-a3f67c448e012193.d: examples/resnet_training.rs

/root/repo/target/debug/examples/resnet_training-a3f67c448e012193: examples/resnet_training.rs

examples/resnet_training.rs:
