/root/repo/target/debug/examples/autotune_kernels-c408ebffe223e79b.d: examples/autotune_kernels.rs Cargo.toml

/root/repo/target/debug/examples/libautotune_kernels-c408ebffe223e79b.rmeta: examples/autotune_kernels.rs Cargo.toml

examples/autotune_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
