/root/repo/target/debug/examples/gpu_study-7b68c271f11c55c1.d: examples/gpu_study.rs

/root/repo/target/debug/examples/gpu_study-7b68c271f11c55c1: examples/gpu_study.rs

examples/gpu_study.rs:
