/root/repo/target/debug/examples/quickstart-f10f1f7cda3f0554.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f10f1f7cda3f0554: examples/quickstart.rs

examples/quickstart.rs:
