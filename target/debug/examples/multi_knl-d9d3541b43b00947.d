/root/repo/target/debug/examples/multi_knl-d9d3541b43b00947.d: examples/multi_knl.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_knl-d9d3541b43b00947.rmeta: examples/multi_knl.rs Cargo.toml

examples/multi_knl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
