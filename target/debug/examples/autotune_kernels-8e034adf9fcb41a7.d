/root/repo/target/debug/examples/autotune_kernels-8e034adf9fcb41a7.d: examples/autotune_kernels.rs

/root/repo/target/debug/examples/autotune_kernels-8e034adf9fcb41a7: examples/autotune_kernels.rs

examples/autotune_kernels.rs:
