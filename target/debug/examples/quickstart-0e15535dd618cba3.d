/root/repo/target/debug/examples/quickstart-0e15535dd618cba3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0e15535dd618cba3: examples/quickstart.rs

examples/quickstart.rs:
