/root/repo/target/debug/examples/probe_mp-3689a15de1f410e3.d: crates/cluster/examples/probe_mp.rs

/root/repo/target/debug/examples/probe_mp-3689a15de1f410e3: crates/cluster/examples/probe_mp.rs

crates/cluster/examples/probe_mp.rs:
