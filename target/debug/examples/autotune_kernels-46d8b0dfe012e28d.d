/root/repo/target/debug/examples/autotune_kernels-46d8b0dfe012e28d.d: examples/autotune_kernels.rs

/root/repo/target/debug/examples/autotune_kernels-46d8b0dfe012e28d: examples/autotune_kernels.rs

examples/autotune_kernels.rs:
