/root/repo/target/debug/examples/resnet_training-71eb893ffb8e626a.d: examples/resnet_training.rs

/root/repo/target/debug/examples/resnet_training-71eb893ffb8e626a: examples/resnet_training.rs

examples/resnet_training.rs:
