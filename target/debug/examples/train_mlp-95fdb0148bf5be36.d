/root/repo/target/debug/examples/train_mlp-95fdb0148bf5be36.d: examples/train_mlp.rs

/root/repo/target/debug/examples/train_mlp-95fdb0148bf5be36: examples/train_mlp.rs

examples/train_mlp.rs:
