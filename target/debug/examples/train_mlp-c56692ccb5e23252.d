/root/repo/target/debug/examples/train_mlp-c56692ccb5e23252.d: examples/train_mlp.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_mlp-c56692ccb5e23252.rmeta: examples/train_mlp.rs Cargo.toml

examples/train_mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
