/root/repo/target/debug/examples/multi_knl-687645f5b2b5d539.d: examples/multi_knl.rs

/root/repo/target/debug/examples/multi_knl-687645f5b2b5d539: examples/multi_knl.rs

examples/multi_knl.rs:
