/root/repo/target/debug/examples/multi_knl-cb036ebf368c3a28.d: examples/multi_knl.rs

/root/repo/target/debug/examples/multi_knl-cb036ebf368c3a28: examples/multi_knl.rs

examples/multi_knl.rs:
