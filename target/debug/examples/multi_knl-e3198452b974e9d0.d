/root/repo/target/debug/examples/multi_knl-e3198452b974e9d0.d: examples/multi_knl.rs

/root/repo/target/debug/examples/multi_knl-e3198452b974e9d0: examples/multi_knl.rs

examples/multi_knl.rs:
