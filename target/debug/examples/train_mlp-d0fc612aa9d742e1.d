/root/repo/target/debug/examples/train_mlp-d0fc612aa9d742e1.d: examples/train_mlp.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_mlp-d0fc612aa9d742e1.rmeta: examples/train_mlp.rs Cargo.toml

examples/train_mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
