/root/repo/target/debug/examples/multi_knl-b15e71a7b0a0a880.d: examples/multi_knl.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_knl-b15e71a7b0a0a880.rmeta: examples/multi_knl.rs Cargo.toml

examples/multi_knl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
