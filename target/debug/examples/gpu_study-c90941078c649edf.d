/root/repo/target/debug/examples/gpu_study-c90941078c649edf.d: examples/gpu_study.rs

/root/repo/target/debug/examples/gpu_study-c90941078c649edf: examples/gpu_study.rs

examples/gpu_study.rs:
