/root/repo/target/debug/examples/autotune_kernels-27038b2c91488e07.d: examples/autotune_kernels.rs Cargo.toml

/root/repo/target/debug/examples/libautotune_kernels-27038b2c91488e07.rmeta: examples/autotune_kernels.rs Cargo.toml

examples/autotune_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
