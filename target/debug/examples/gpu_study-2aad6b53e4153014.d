/root/repo/target/debug/examples/gpu_study-2aad6b53e4153014.d: examples/gpu_study.rs Cargo.toml

/root/repo/target/debug/examples/libgpu_study-2aad6b53e4153014.rmeta: examples/gpu_study.rs Cargo.toml

examples/gpu_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
