/root/repo/target/debug/examples/sizes-60608fe1b653049f.d: crates/models/examples/sizes.rs

/root/repo/target/debug/examples/sizes-60608fe1b653049f: crates/models/examples/sizes.rs

crates/models/examples/sizes.rs:
