/root/repo/target/debug/examples/sizes-121daa64a8df90c7.d: crates/models/examples/sizes.rs Cargo.toml

/root/repo/target/debug/examples/libsizes-121daa64a8df90c7.rmeta: crates/models/examples/sizes.rs Cargo.toml

crates/models/examples/sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
