/root/repo/target/debug/deps/calibrate-6786f18013ca7818.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-6786f18013ca7818: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
