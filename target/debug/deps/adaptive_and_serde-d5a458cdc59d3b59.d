/root/repo/target/debug/deps/adaptive_and_serde-d5a458cdc59d3b59.d: tests/adaptive_and_serde.rs

/root/repo/target/debug/deps/adaptive_and_serde-d5a458cdc59d3b59: tests/adaptive_and_serde.rs

tests/adaptive_and_serde.rs:
