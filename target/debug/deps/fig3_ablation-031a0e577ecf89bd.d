/root/repo/target/debug/deps/fig3_ablation-031a0e577ecf89bd.d: crates/bench/benches/fig3_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_ablation-031a0e577ecf89bd.rmeta: crates/bench/benches/fig3_ablation.rs Cargo.toml

crates/bench/benches/fig3_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
