/root/repo/target/debug/deps/chaos_fleet-7a10c5e5768b19f2.d: tests/chaos_fleet.rs

/root/repo/target/debug/deps/chaos_fleet-7a10c5e5768b19f2: tests/chaos_fleet.rs

tests/chaos_fleet.rs:
