/root/repo/target/debug/deps/table4_regression-789e6d801b360c9d.d: crates/bench/benches/table4_regression.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_regression-789e6d801b360c9d.rmeta: crates/bench/benches/table4_regression.rs Cargo.toml

crates/bench/benches/table4_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
