/root/repo/target/debug/deps/nnrt-de932a6e462d867d.d: src/bin/nnrt.rs

/root/repo/target/debug/deps/nnrt-de932a6e462d867d: src/bin/nnrt.rs

src/bin/nnrt.rs:
