/root/repo/target/debug/deps/nnrt_manycore-932aa96dbd967f4d.d: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

/root/repo/target/debug/deps/nnrt_manycore-932aa96dbd967f4d: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

crates/manycore/src/lib.rs:
crates/manycore/src/cost.rs:
crates/manycore/src/engine.rs:
crates/manycore/src/error.rs:
crates/manycore/src/health.rs:
crates/manycore/src/noise.rs:
crates/manycore/src/placement.rs:
crates/manycore/src/signature.rs:
crates/manycore/src/topology.rs:
crates/manycore/src/workload.rs:
