/root/repo/target/debug/deps/serve_fleet-2f4ad5b60b32a93c.d: tests/serve_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libserve_fleet-2f4ad5b60b32a93c.rmeta: tests/serve_fleet.rs Cargo.toml

tests/serve_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
