/root/repo/target/debug/deps/proptest-f4e67595c400640b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f4e67595c400640b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f4e67595c400640b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
