/root/repo/target/debug/deps/nnrt_kernels-eef4a7b2bd30a512.d: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

/root/repo/target/debug/deps/nnrt_kernels-eef4a7b2bd30a512: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

crates/kernels/src/lib.rs:
crates/kernels/src/autotune.rs:
crates/kernels/src/batchnorm.rs:
crates/kernels/src/conv.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/im2col.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/pool.rs:
crates/kernels/src/pooling.rs:
crates/kernels/src/softmax.rs:
crates/kernels/src/tensor.rs:
