/root/repo/target/debug/deps/proptest_cost_engine-21a50f1524f98517.d: crates/manycore/tests/proptest_cost_engine.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cost_engine-21a50f1524f98517.rmeta: crates/manycore/tests/proptest_cost_engine.rs Cargo.toml

crates/manycore/tests/proptest_cost_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
