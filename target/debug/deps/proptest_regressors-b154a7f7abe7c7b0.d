/root/repo/target/debug/deps/proptest_regressors-b154a7f7abe7c7b0.d: crates/regress/tests/proptest_regressors.rs

/root/repo/target/debug/deps/proptest_regressors-b154a7f7abe7c7b0: crates/regress/tests/proptest_regressors.rs

crates/regress/tests/proptest_regressors.rs:
