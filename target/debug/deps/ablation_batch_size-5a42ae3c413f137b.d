/root/repo/target/debug/deps/ablation_batch_size-5a42ae3c413f137b.d: crates/bench/benches/ablation_batch_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_batch_size-5a42ae3c413f137b.rmeta: crates/bench/benches/ablation_batch_size.rs Cargo.toml

crates/bench/benches/ablation_batch_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
