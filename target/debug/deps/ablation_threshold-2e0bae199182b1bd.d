/root/repo/target/debug/deps/ablation_threshold-2e0bae199182b1bd.d: crates/bench/benches/ablation_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libablation_threshold-2e0bae199182b1bd.rmeta: crates/bench/benches/ablation_threshold.rs Cargo.toml

crates/bench/benches/ablation_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
