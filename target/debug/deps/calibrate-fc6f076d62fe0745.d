/root/repo/target/debug/deps/calibrate-fc6f076d62fe0745.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-fc6f076d62fe0745.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
