/root/repo/target/debug/deps/nnrt_counters-fdfe722ac6f3789f.d: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/debug/deps/libnnrt_counters-fdfe722ac6f3789f.rlib: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/debug/deps/libnnrt_counters-fdfe722ac6f3789f.rmeta: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

crates/counters/src/lib.rs:
crates/counters/src/events.rs:
crates/counters/src/features.rs:
crates/counters/src/sampler.rs:
