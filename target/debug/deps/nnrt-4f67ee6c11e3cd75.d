/root/repo/target/debug/deps/nnrt-4f67ee6c11e3cd75.d: src/bin/nnrt.rs

/root/repo/target/debug/deps/nnrt-4f67ee6c11e3cd75: src/bin/nnrt.rs

src/bin/nnrt.rs:
