/root/repo/target/debug/deps/fig5_gpu_intraop-d51811e064d784a1.d: crates/bench/benches/fig5_gpu_intraop.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_gpu_intraop-d51811e064d784a1.rmeta: crates/bench/benches/fig5_gpu_intraop.rs Cargo.toml

crates/bench/benches/fig5_gpu_intraop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
