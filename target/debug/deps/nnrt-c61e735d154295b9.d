/root/repo/target/debug/deps/nnrt-c61e735d154295b9.d: src/bin/nnrt.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-c61e735d154295b9.rmeta: src/bin/nnrt.rs Cargo.toml

src/bin/nnrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
