/root/repo/target/debug/deps/table7_gpu_corun-211ec04e44689685.d: crates/bench/benches/table7_gpu_corun.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_gpu_corun-211ec04e44689685.rmeta: crates/bench/benches/table7_gpu_corun.rs Cargo.toml

crates/bench/benches/table7_gpu_corun.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
