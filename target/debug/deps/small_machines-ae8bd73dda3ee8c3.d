/root/repo/target/debug/deps/small_machines-ae8bd73dda3ee8c3.d: tests/small_machines.rs

/root/repo/target/debug/deps/small_machines-ae8bd73dda3ee8c3: tests/small_machines.rs

tests/small_machines.rs:
