/root/repo/target/debug/deps/nnrt_gpu-72c89029d4078f49.d: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/debug/deps/nnrt_gpu-72c89029d4078f49: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

crates/gpu/src/lib.rs:
crates/gpu/src/model.rs:
crates/gpu/src/ops.rs:
crates/gpu/src/streams.rs:
crates/gpu/src/tuner.rs:
