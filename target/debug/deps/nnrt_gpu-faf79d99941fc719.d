/root/repo/target/debug/deps/nnrt_gpu-faf79d99941fc719.d: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_gpu-faf79d99941fc719.rmeta: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/model.rs:
crates/gpu/src/ops.rs:
crates/gpu/src/streams.rs:
crates/gpu/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
