/root/repo/target/debug/deps/nnrt-f48c549e4ac10b81.d: src/lib.rs

/root/repo/target/debug/deps/nnrt-f48c549e4ac10b81: src/lib.rs

src/lib.rs:
