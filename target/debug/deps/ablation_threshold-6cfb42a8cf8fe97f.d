/root/repo/target/debug/deps/ablation_threshold-6cfb42a8cf8fe97f.d: crates/bench/benches/ablation_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libablation_threshold-6cfb42a8cf8fe97f.rmeta: crates/bench/benches/ablation_threshold.rs Cargo.toml

crates/bench/benches/ablation_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
