/root/repo/target/debug/deps/nnrt-2954951dbc84b750.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-2954951dbc84b750.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
