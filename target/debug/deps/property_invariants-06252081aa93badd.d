/root/repo/target/debug/deps/property_invariants-06252081aa93badd.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-06252081aa93badd: tests/property_invariants.rs

tests/property_invariants.rs:
