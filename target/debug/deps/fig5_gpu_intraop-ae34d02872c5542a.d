/root/repo/target/debug/deps/fig5_gpu_intraop-ae34d02872c5542a.d: crates/bench/benches/fig5_gpu_intraop.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_gpu_intraop-ae34d02872c5542a.rmeta: crates/bench/benches/fig5_gpu_intraop.rs Cargo.toml

crates/bench/benches/fig5_gpu_intraop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
