/root/repo/target/debug/deps/serve_rpc-240cd7a4b68a9114.d: crates/bench/benches/serve_rpc.rs Cargo.toml

/root/repo/target/debug/deps/libserve_rpc-240cd7a4b68a9114.rmeta: crates/bench/benches/serve_rpc.rs Cargo.toml

crates/bench/benches/serve_rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
