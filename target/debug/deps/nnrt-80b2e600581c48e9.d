/root/repo/target/debug/deps/nnrt-80b2e600581c48e9.d: src/bin/nnrt.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-80b2e600581c48e9.rmeta: src/bin/nnrt.rs Cargo.toml

src/bin/nnrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
