/root/repo/target/debug/deps/table5_hillclimb-85e9d01935ae5cb8.d: crates/bench/benches/table5_hillclimb.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_hillclimb-85e9d01935ae5cb8.rmeta: crates/bench/benches/table5_hillclimb.rs Cargo.toml

crates/bench/benches/table5_hillclimb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
