/root/repo/target/debug/deps/table4_regression-abdec241dbac8524.d: crates/bench/benches/table4_regression.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_regression-abdec241dbac8524.rmeta: crates/bench/benches/table4_regression.rs Cargo.toml

crates/bench/benches/table4_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
