/root/repo/target/debug/deps/fig3_ablation-72d1be20c0292c59.d: crates/bench/benches/fig3_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_ablation-72d1be20c0292c59.rmeta: crates/bench/benches/fig3_ablation.rs Cargo.toml

crates/bench/benches/fig3_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
