/root/repo/target/debug/deps/nnrt_serve-b2c1a56f602af2ad.d: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_serve-b2c1a56f602af2ad.rmeta: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/chaos.rs:
crates/serve/src/checkpoint.rs:
crates/serve/src/fleet.rs:
crates/serve/src/job.rs:
crates/serve/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
