/root/repo/target/debug/deps/fig1_op_scaling-14789046633caa90.d: crates/bench/benches/fig1_op_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_op_scaling-14789046633caa90.rmeta: crates/bench/benches/fig1_op_scaling.rs Cargo.toml

crates/bench/benches/fig1_op_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
