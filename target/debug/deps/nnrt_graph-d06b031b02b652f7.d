/root/repo/target/debug/deps/nnrt_graph-d06b031b02b652f7.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/debug/deps/nnrt_graph-d06b031b02b652f7: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/ops.rs:
crates/graph/src/profile.rs:
crates/graph/src/shape.rs:
