/root/repo/target/debug/deps/proptest_sched-d94299fa87793b96.d: crates/core/tests/proptest_sched.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sched-d94299fa87793b96.rmeta: crates/core/tests/proptest_sched.rs Cargo.toml

crates/core/tests/proptest_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
