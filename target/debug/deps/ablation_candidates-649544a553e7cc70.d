/root/repo/target/debug/deps/ablation_candidates-649544a553e7cc70.d: crates/bench/benches/ablation_candidates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_candidates-649544a553e7cc70.rmeta: crates/bench/benches/ablation_candidates.rs Cargo.toml

crates/bench/benches/ablation_candidates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
