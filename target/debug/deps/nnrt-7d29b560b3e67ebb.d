/root/repo/target/debug/deps/nnrt-7d29b560b3e67ebb.d: src/bin/nnrt.rs

/root/repo/target/debug/deps/nnrt-7d29b560b3e67ebb: src/bin/nnrt.rs

src/bin/nnrt.rs:
