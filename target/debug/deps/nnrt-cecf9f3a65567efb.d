/root/repo/target/debug/deps/nnrt-cecf9f3a65567efb.d: src/bin/nnrt.rs

/root/repo/target/debug/deps/nnrt-cecf9f3a65567efb: src/bin/nnrt.rs

src/bin/nnrt.rs:
