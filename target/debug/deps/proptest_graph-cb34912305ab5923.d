/root/repo/target/debug/deps/proptest_graph-cb34912305ab5923.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-cb34912305ab5923: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
