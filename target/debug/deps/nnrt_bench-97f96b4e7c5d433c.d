/root/repo/target/debug/deps/nnrt_bench-97f96b4e7c5d433c.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libnnrt_bench-97f96b4e7c5d433c.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libnnrt_bench-97f96b4e7c5d433c.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
