/root/repo/target/debug/deps/ablation_thrash-4d76972c35fbe6ea.d: crates/bench/benches/ablation_thrash.rs Cargo.toml

/root/repo/target/debug/deps/libablation_thrash-4d76972c35fbe6ea.rmeta: crates/bench/benches/ablation_thrash.rs Cargo.toml

crates/bench/benches/ablation_thrash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
