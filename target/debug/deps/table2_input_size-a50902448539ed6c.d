/root/repo/target/debug/deps/table2_input_size-a50902448539ed6c.d: crates/bench/benches/table2_input_size.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_input_size-a50902448539ed6c.rmeta: crates/bench/benches/table2_input_size.rs Cargo.toml

crates/bench/benches/table2_input_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
