/root/repo/target/debug/deps/nnrt-4961188be6aeb92a.d: src/bin/nnrt.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-4961188be6aeb92a.rmeta: src/bin/nnrt.rs Cargo.toml

src/bin/nnrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
