/root/repo/target/debug/deps/proptest-b72ac924b7898fd8.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-b72ac924b7898fd8: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
