/root/repo/target/debug/deps/nnrt-b03fbb5593755f51.d: src/lib.rs

/root/repo/target/debug/deps/libnnrt-b03fbb5593755f51.rlib: src/lib.rs

/root/repo/target/debug/deps/libnnrt-b03fbb5593755f51.rmeta: src/lib.rs

src/lib.rs:
