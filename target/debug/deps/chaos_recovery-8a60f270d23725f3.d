/root/repo/target/debug/deps/chaos_recovery-8a60f270d23725f3.d: crates/bench/benches/chaos_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_recovery-8a60f270d23725f3.rmeta: crates/bench/benches/chaos_recovery.rs Cargo.toml

crates/bench/benches/chaos_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
