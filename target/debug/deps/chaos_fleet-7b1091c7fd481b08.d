/root/repo/target/debug/deps/chaos_fleet-7b1091c7fd481b08.d: tests/chaos_fleet.rs

/root/repo/target/debug/deps/chaos_fleet-7b1091c7fd481b08: tests/chaos_fleet.rs

tests/chaos_fleet.rs:
