/root/repo/target/debug/deps/nnrt_manycore-ee3f0e705f70bc6e.d: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_manycore-ee3f0e705f70bc6e.rmeta: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs Cargo.toml

crates/manycore/src/lib.rs:
crates/manycore/src/cost.rs:
crates/manycore/src/engine.rs:
crates/manycore/src/error.rs:
crates/manycore/src/health.rs:
crates/manycore/src/noise.rs:
crates/manycore/src/placement.rs:
crates/manycore/src/signature.rs:
crates/manycore/src/topology.rs:
crates/manycore/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
