/root/repo/target/debug/deps/nnrt-714fa98e2612b5ff.d: src/bin/nnrt.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-714fa98e2612b5ff.rmeta: src/bin/nnrt.rs Cargo.toml

src/bin/nnrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
