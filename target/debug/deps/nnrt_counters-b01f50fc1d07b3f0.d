/root/repo/target/debug/deps/nnrt_counters-b01f50fc1d07b3f0.d: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_counters-b01f50fc1d07b3f0.rmeta: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs Cargo.toml

crates/counters/src/lib.rs:
crates/counters/src/events.rs:
crates/counters/src/features.rs:
crates/counters/src/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
