/root/repo/target/debug/deps/serve_throughput-85435bf2ee5f5b1c.d: crates/bench/benches/serve_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libserve_throughput-85435bf2ee5f5b1c.rmeta: crates/bench/benches/serve_throughput.rs Cargo.toml

crates/bench/benches/serve_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
