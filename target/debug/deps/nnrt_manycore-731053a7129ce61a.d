/root/repo/target/debug/deps/nnrt_manycore-731053a7129ce61a.d: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

/root/repo/target/debug/deps/libnnrt_manycore-731053a7129ce61a.rlib: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

/root/repo/target/debug/deps/libnnrt_manycore-731053a7129ce61a.rmeta: crates/manycore/src/lib.rs crates/manycore/src/cost.rs crates/manycore/src/engine.rs crates/manycore/src/error.rs crates/manycore/src/health.rs crates/manycore/src/noise.rs crates/manycore/src/placement.rs crates/manycore/src/signature.rs crates/manycore/src/topology.rs crates/manycore/src/workload.rs

crates/manycore/src/lib.rs:
crates/manycore/src/cost.rs:
crates/manycore/src/engine.rs:
crates/manycore/src/error.rs:
crates/manycore/src/health.rs:
crates/manycore/src/noise.rs:
crates/manycore/src/placement.rs:
crates/manycore/src/signature.rs:
crates/manycore/src/topology.rs:
crates/manycore/src/workload.rs:
