/root/repo/target/debug/deps/cluster_scaling-6b7c82fbefeb058b.d: crates/bench/benches/cluster_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_scaling-6b7c82fbefeb058b.rmeta: crates/bench/benches/cluster_scaling.rs Cargo.toml

crates/bench/benches/cluster_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
