/root/repo/target/debug/deps/nnrt_kernels-d95f76c6695f4235.d: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

/root/repo/target/debug/deps/libnnrt_kernels-d95f76c6695f4235.rlib: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

/root/repo/target/debug/deps/libnnrt_kernels-d95f76c6695f4235.rmeta: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs

crates/kernels/src/lib.rs:
crates/kernels/src/autotune.rs:
crates/kernels/src/batchnorm.rs:
crates/kernels/src/conv.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/im2col.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/pool.rs:
crates/kernels/src/pooling.rs:
crates/kernels/src/softmax.rs:
crates/kernels/src/tensor.rs:
