/root/repo/target/debug/deps/nnrt-3ec7c325e3824b68.d: src/lib.rs

/root/repo/target/debug/deps/nnrt-3ec7c325e3824b68: src/lib.rs

src/lib.rs:
