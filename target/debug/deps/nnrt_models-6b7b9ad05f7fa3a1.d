/root/repo/target/debug/deps/nnrt_models-6b7b9ad05f7fa3a1.d: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_models-6b7b9ad05f7fa3a1.rmeta: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/common.rs:
crates/models/src/datasets.rs:
crates/models/src/dcgan.rs:
crates/models/src/inception.rs:
crates/models/src/lstm.rs:
crates/models/src/resnet.rs:
crates/models/src/transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
