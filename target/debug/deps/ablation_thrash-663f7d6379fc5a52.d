/root/repo/target/debug/deps/ablation_thrash-663f7d6379fc5a52.d: crates/bench/benches/ablation_thrash.rs Cargo.toml

/root/repo/target/debug/deps/libablation_thrash-663f7d6379fc5a52.rmeta: crates/bench/benches/ablation_thrash.rs Cargo.toml

crates/bench/benches/ablation_thrash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
