/root/repo/target/debug/deps/nnrt_kernels-440c6d80cb600f73.d: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_kernels-440c6d80cb600f73.rmeta: crates/kernels/src/lib.rs crates/kernels/src/autotune.rs crates/kernels/src/batchnorm.rs crates/kernels/src/conv.rs crates/kernels/src/elementwise.rs crates/kernels/src/im2col.rs crates/kernels/src/matmul.rs crates/kernels/src/pool.rs crates/kernels/src/pooling.rs crates/kernels/src/softmax.rs crates/kernels/src/tensor.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/autotune.rs:
crates/kernels/src/batchnorm.rs:
crates/kernels/src/conv.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/im2col.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/pool.rs:
crates/kernels/src/pooling.rs:
crates/kernels/src/softmax.rs:
crates/kernels/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
