/root/repo/target/debug/deps/nnrt_models-4b2635855c32516c.d: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs

/root/repo/target/debug/deps/nnrt_models-4b2635855c32516c: crates/models/src/lib.rs crates/models/src/common.rs crates/models/src/datasets.rs crates/models/src/dcgan.rs crates/models/src/inception.rs crates/models/src/lstm.rs crates/models/src/resnet.rs crates/models/src/transformer.rs

crates/models/src/lib.rs:
crates/models/src/common.rs:
crates/models/src/datasets.rs:
crates/models/src/dcgan.rs:
crates/models/src/inception.rs:
crates/models/src/lstm.rs:
crates/models/src/resnet.rs:
crates/models/src/transformer.rs:
