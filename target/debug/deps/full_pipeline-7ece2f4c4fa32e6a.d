/root/repo/target/debug/deps/full_pipeline-7ece2f4c4fa32e6a.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-7ece2f4c4fa32e6a: tests/full_pipeline.rs

tests/full_pipeline.rs:
