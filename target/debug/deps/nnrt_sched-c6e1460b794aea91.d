/root/repo/target/debug/deps/nnrt_sched-c6e1460b794aea91.d: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/feedback.rs crates/core/src/hillclimb.rs crates/core/src/measure.rs crates/core/src/oracle.rs crates/core/src/plan.rs crates/core/src/regmodel.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/tf_baseline.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_sched-c6e1460b794aea91.rmeta: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/feedback.rs crates/core/src/hillclimb.rs crates/core/src/measure.rs crates/core/src/oracle.rs crates/core/src/plan.rs crates/core/src/regmodel.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/tf_baseline.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/exec.rs:
crates/core/src/feedback.rs:
crates/core/src/hillclimb.rs:
crates/core/src/measure.rs:
crates/core/src/oracle.rs:
crates/core/src/plan.rs:
crates/core/src/regmodel.rs:
crates/core/src/runtime.rs:
crates/core/src/scheduler.rs:
crates/core/src/tf_baseline.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
