/root/repo/target/debug/deps/nnrt-13f1a6d8123f1c45.d: src/bin/nnrt.rs

/root/repo/target/debug/deps/nnrt-13f1a6d8123f1c45: src/bin/nnrt.rs

src/bin/nnrt.rs:
