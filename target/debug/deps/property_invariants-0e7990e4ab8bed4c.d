/root/repo/target/debug/deps/property_invariants-0e7990e4ab8bed4c.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-0e7990e4ab8bed4c: tests/property_invariants.rs

tests/property_invariants.rs:
