/root/repo/target/debug/deps/full_pipeline-beb65e24d2208257.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-beb65e24d2208257: tests/full_pipeline.rs

tests/full_pipeline.rs:
