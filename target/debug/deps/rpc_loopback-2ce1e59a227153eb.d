/root/repo/target/debug/deps/rpc_loopback-2ce1e59a227153eb.d: tests/rpc_loopback.rs

/root/repo/target/debug/deps/rpc_loopback-2ce1e59a227153eb: tests/rpc_loopback.rs

tests/rpc_loopback.rs:
