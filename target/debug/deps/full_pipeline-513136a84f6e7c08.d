/root/repo/target/debug/deps/full_pipeline-513136a84f6e7c08.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-513136a84f6e7c08: tests/full_pipeline.rs

tests/full_pipeline.rs:
