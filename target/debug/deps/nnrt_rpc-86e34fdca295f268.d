/root/repo/target/debug/deps/nnrt_rpc-86e34fdca295f268.d: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_rpc-86e34fdca295f268.rmeta: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs Cargo.toml

crates/rpc/src/lib.rs:
crates/rpc/src/client.rs:
crates/rpc/src/protocol.rs:
crates/rpc/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
