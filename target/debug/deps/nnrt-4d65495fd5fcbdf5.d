/root/repo/target/debug/deps/nnrt-4d65495fd5fcbdf5.d: src/lib.rs

/root/repo/target/debug/deps/libnnrt-4d65495fd5fcbdf5.rlib: src/lib.rs

/root/repo/target/debug/deps/libnnrt-4d65495fd5fcbdf5.rmeta: src/lib.rs

src/lib.rs:
