/root/repo/target/debug/deps/nnrt_cluster-54d79e628e00785e.d: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_cluster-54d79e628e00785e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/data_parallel.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/model_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
