/root/repo/target/debug/deps/fig4_corun_events-3f53d58a7b8becea.d: crates/bench/benches/fig4_corun_events.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_corun_events-3f53d58a7b8becea.rmeta: crates/bench/benches/fig4_corun_events.rs Cargo.toml

crates/bench/benches/fig4_corun_events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
