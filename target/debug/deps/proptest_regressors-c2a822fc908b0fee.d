/root/repo/target/debug/deps/proptest_regressors-c2a822fc908b0fee.d: crates/regress/tests/proptest_regressors.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_regressors-c2a822fc908b0fee.rmeta: crates/regress/tests/proptest_regressors.rs Cargo.toml

crates/regress/tests/proptest_regressors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
