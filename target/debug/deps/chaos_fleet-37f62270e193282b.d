/root/repo/target/debug/deps/chaos_fleet-37f62270e193282b.d: tests/chaos_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_fleet-37f62270e193282b.rmeta: tests/chaos_fleet.rs Cargo.toml

tests/chaos_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
