/root/repo/target/debug/deps/calibrate-8ddecb1adc259e9c.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-8ddecb1adc259e9c: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
