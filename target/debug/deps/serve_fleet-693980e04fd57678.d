/root/repo/target/debug/deps/serve_fleet-693980e04fd57678.d: tests/serve_fleet.rs

/root/repo/target/debug/deps/serve_fleet-693980e04fd57678: tests/serve_fleet.rs

tests/serve_fleet.rs:
