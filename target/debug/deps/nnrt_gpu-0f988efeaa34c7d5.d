/root/repo/target/debug/deps/nnrt_gpu-0f988efeaa34c7d5.d: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/debug/deps/libnnrt_gpu-0f988efeaa34c7d5.rlib: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

/root/repo/target/debug/deps/libnnrt_gpu-0f988efeaa34c7d5.rmeta: crates/gpu/src/lib.rs crates/gpu/src/model.rs crates/gpu/src/ops.rs crates/gpu/src/streams.rs crates/gpu/src/tuner.rs

crates/gpu/src/lib.rs:
crates/gpu/src/model.rs:
crates/gpu/src/ops.rs:
crates/gpu/src/streams.rs:
crates/gpu/src/tuner.rs:
