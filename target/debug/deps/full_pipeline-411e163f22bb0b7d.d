/root/repo/target/debug/deps/full_pipeline-411e163f22bb0b7d.d: tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-411e163f22bb0b7d.rmeta: tests/full_pipeline.rs Cargo.toml

tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
