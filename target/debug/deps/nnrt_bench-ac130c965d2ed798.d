/root/repo/target/debug/deps/nnrt_bench-ac130c965d2ed798.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/nnrt_bench-ac130c965d2ed798: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
