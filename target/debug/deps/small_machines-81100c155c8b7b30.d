/root/repo/target/debug/deps/small_machines-81100c155c8b7b30.d: tests/small_machines.rs

/root/repo/target/debug/deps/small_machines-81100c155c8b7b30: tests/small_machines.rs

tests/small_machines.rs:
