/root/repo/target/debug/deps/nnrt_bench-c669a07cb8b725b3.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_bench-c669a07cb8b725b3.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
