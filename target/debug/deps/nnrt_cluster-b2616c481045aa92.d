/root/repo/target/debug/deps/nnrt_cluster-b2616c481045aa92.d: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/debug/deps/libnnrt_cluster-b2616c481045aa92.rlib: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/debug/deps/libnnrt_cluster-b2616c481045aa92.rmeta: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

crates/cluster/src/lib.rs:
crates/cluster/src/data_parallel.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/model_parallel.rs:
