/root/repo/target/debug/deps/small_machines-f8bee2116117ddeb.d: tests/small_machines.rs

/root/repo/target/debug/deps/small_machines-f8bee2116117ddeb: tests/small_machines.rs

tests/small_machines.rs:
