/root/repo/target/debug/deps/chaos_fleet-b5da4699dd9f0b15.d: tests/chaos_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_fleet-b5da4699dd9f0b15.rmeta: tests/chaos_fleet.rs Cargo.toml

tests/chaos_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
