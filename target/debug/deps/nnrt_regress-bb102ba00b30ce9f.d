/root/repo/target/debug/deps/nnrt_regress-bb102ba00b30ce9f.d: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs

/root/repo/target/debug/deps/libnnrt_regress-bb102ba00b30ce9f.rlib: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs

/root/repo/target/debug/deps/libnnrt_regress-bb102ba00b30ce9f.rmeta: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs

crates/regress/src/lib.rs:
crates/regress/src/feature_select.rs:
crates/regress/src/gbrt.rs:
crates/regress/src/knn.rs:
crates/regress/src/linalg.rs:
crates/regress/src/metrics.rs:
crates/regress/src/ols.rs:
crates/regress/src/par.rs:
crates/regress/src/theilsen.rs:
crates/regress/src/tree.rs:
