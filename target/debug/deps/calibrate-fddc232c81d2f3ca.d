/root/repo/target/debug/deps/calibrate-fddc232c81d2f3ca.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-fddc232c81d2f3ca.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
