/root/repo/target/debug/deps/ablation_oracle-6dd4bbba01ae8fc4.d: crates/bench/benches/ablation_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libablation_oracle-6dd4bbba01ae8fc4.rmeta: crates/bench/benches/ablation_oracle.rs Cargo.toml

crates/bench/benches/ablation_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
