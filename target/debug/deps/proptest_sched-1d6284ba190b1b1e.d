/root/repo/target/debug/deps/proptest_sched-1d6284ba190b1b1e.d: crates/core/tests/proptest_sched.rs

/root/repo/target/debug/deps/proptest_sched-1d6284ba190b1b1e: crates/core/tests/proptest_sched.rs

crates/core/tests/proptest_sched.rs:
