/root/repo/target/debug/deps/nnrt-b5647cb6eb451a0c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-b5647cb6eb451a0c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
