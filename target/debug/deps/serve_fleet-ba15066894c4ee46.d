/root/repo/target/debug/deps/serve_fleet-ba15066894c4ee46.d: tests/serve_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libserve_fleet-ba15066894c4ee46.rmeta: tests/serve_fleet.rs Cargo.toml

tests/serve_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
