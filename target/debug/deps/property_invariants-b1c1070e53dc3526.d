/root/repo/target/debug/deps/property_invariants-b1c1070e53dc3526.d: tests/property_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_invariants-b1c1070e53dc3526.rmeta: tests/property_invariants.rs Cargo.toml

tests/property_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
