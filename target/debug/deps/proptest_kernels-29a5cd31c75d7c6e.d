/root/repo/target/debug/deps/proptest_kernels-29a5cd31c75d7c6e.d: crates/kernels/tests/proptest_kernels.rs

/root/repo/target/debug/deps/proptest_kernels-29a5cd31c75d7c6e: crates/kernels/tests/proptest_kernels.rs

crates/kernels/tests/proptest_kernels.rs:
