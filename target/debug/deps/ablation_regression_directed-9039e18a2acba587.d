/root/repo/target/debug/deps/ablation_regression_directed-9039e18a2acba587.d: crates/bench/benches/ablation_regression_directed.rs Cargo.toml

/root/repo/target/debug/deps/libablation_regression_directed-9039e18a2acba587.rmeta: crates/bench/benches/ablation_regression_directed.rs Cargo.toml

crates/bench/benches/ablation_regression_directed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
