/root/repo/target/debug/deps/cluster_scaling-ddef04f2d4dc0123.d: crates/bench/benches/cluster_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_scaling-ddef04f2d4dc0123.rmeta: crates/bench/benches/cluster_scaling.rs Cargo.toml

crates/bench/benches/cluster_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
