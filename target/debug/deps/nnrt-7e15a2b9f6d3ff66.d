/root/repo/target/debug/deps/nnrt-7e15a2b9f6d3ff66.d: src/lib.rs

/root/repo/target/debug/deps/libnnrt-7e15a2b9f6d3ff66.rlib: src/lib.rs

/root/repo/target/debug/deps/libnnrt-7e15a2b9f6d3ff66.rmeta: src/lib.rs

src/lib.rs:
