/root/repo/target/debug/deps/nnrt-f7bd043df5d27b16.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-f7bd043df5d27b16.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
