/root/repo/target/debug/deps/nnrt_serve-0417b5073f2544be.d: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/debug/deps/libnnrt_serve-0417b5073f2544be.rlib: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/debug/deps/libnnrt_serve-0417b5073f2544be.rmeta: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/chaos.rs:
crates/serve/src/checkpoint.rs:
crates/serve/src/fleet.rs:
crates/serve/src/job.rs:
crates/serve/src/store.rs:
