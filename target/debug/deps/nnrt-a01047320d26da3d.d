/root/repo/target/debug/deps/nnrt-a01047320d26da3d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt-a01047320d26da3d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
