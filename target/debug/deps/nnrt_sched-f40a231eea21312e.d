/root/repo/target/debug/deps/nnrt_sched-f40a231eea21312e.d: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/feedback.rs crates/core/src/hillclimb.rs crates/core/src/measure.rs crates/core/src/oracle.rs crates/core/src/plan.rs crates/core/src/regmodel.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/tf_baseline.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libnnrt_sched-f40a231eea21312e.rlib: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/feedback.rs crates/core/src/hillclimb.rs crates/core/src/measure.rs crates/core/src/oracle.rs crates/core/src/plan.rs crates/core/src/regmodel.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/tf_baseline.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libnnrt_sched-f40a231eea21312e.rmeta: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/feedback.rs crates/core/src/hillclimb.rs crates/core/src/measure.rs crates/core/src/oracle.rs crates/core/src/plan.rs crates/core/src/regmodel.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/tf_baseline.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/exec.rs:
crates/core/src/feedback.rs:
crates/core/src/hillclimb.rs:
crates/core/src/measure.rs:
crates/core/src/oracle.rs:
crates/core/src/plan.rs:
crates/core/src/regmodel.rs:
crates/core/src/runtime.rs:
crates/core/src/scheduler.rs:
crates/core/src/tf_baseline.rs:
crates/core/src/trace.rs:
