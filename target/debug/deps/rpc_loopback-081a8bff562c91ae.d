/root/repo/target/debug/deps/rpc_loopback-081a8bff562c91ae.d: tests/rpc_loopback.rs Cargo.toml

/root/repo/target/debug/deps/librpc_loopback-081a8bff562c91ae.rmeta: tests/rpc_loopback.rs Cargo.toml

tests/rpc_loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
