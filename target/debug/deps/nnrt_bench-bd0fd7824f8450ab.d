/root/repo/target/debug/deps/nnrt_bench-bd0fd7824f8450ab.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/nnrt_bench-bd0fd7824f8450ab: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
