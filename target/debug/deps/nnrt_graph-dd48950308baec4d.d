/root/repo/target/debug/deps/nnrt_graph-dd48950308baec4d.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/debug/deps/libnnrt_graph-dd48950308baec4d.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

/root/repo/target/debug/deps/libnnrt_graph-dd48950308baec4d.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/ops.rs:
crates/graph/src/profile.rs:
crates/graph/src/shape.rs:
