/root/repo/target/debug/deps/small_machines-ad5ff3090cadcaac.d: tests/small_machines.rs Cargo.toml

/root/repo/target/debug/deps/libsmall_machines-ad5ff3090cadcaac.rmeta: tests/small_machines.rs Cargo.toml

tests/small_machines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
