/root/repo/target/debug/deps/table6_top_ops-59f7ae93a916aca7.d: crates/bench/benches/table6_top_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_top_ops-59f7ae93a916aca7.rmeta: crates/bench/benches/table6_top_ops.rs Cargo.toml

crates/bench/benches/table6_top_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
