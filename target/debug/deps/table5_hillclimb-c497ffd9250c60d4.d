/root/repo/target/debug/deps/table5_hillclimb-c497ffd9250c60d4.d: crates/bench/benches/table5_hillclimb.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_hillclimb-c497ffd9250c60d4.rmeta: crates/bench/benches/table5_hillclimb.rs Cargo.toml

crates/bench/benches/table5_hillclimb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
