/root/repo/target/debug/deps/nnrt_bench-e5d2aa5bb98e39a4.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libnnrt_bench-e5d2aa5bb98e39a4.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libnnrt_bench-e5d2aa5bb98e39a4.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
