/root/repo/target/debug/deps/nnrt_cluster-c1b0a6e8e738973d.d: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_cluster-c1b0a6e8e738973d.rmeta: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/data_parallel.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/model_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
