/root/repo/target/debug/deps/nnrt-7c3be13aafcac678.d: src/lib.rs

/root/repo/target/debug/deps/nnrt-7c3be13aafcac678: src/lib.rs

src/lib.rs:
