/root/repo/target/debug/deps/micro_criterion-7fd8abe723c778b0.d: crates/bench/benches/micro_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_criterion-7fd8abe723c778b0.rmeta: crates/bench/benches/micro_criterion.rs Cargo.toml

crates/bench/benches/micro_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
