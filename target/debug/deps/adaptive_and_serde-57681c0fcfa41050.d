/root/repo/target/debug/deps/adaptive_and_serde-57681c0fcfa41050.d: tests/adaptive_and_serde.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_and_serde-57681c0fcfa41050.rmeta: tests/adaptive_and_serde.rs Cargo.toml

tests/adaptive_and_serde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
