/root/repo/target/debug/deps/nnrt_rpc-cf86dd1d87bb2710.d: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/debug/deps/libnnrt_rpc-cf86dd1d87bb2710.rlib: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/debug/deps/libnnrt_rpc-cf86dd1d87bb2710.rmeta: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

crates/rpc/src/lib.rs:
crates/rpc/src/client.rs:
crates/rpc/src/protocol.rs:
crates/rpc/src/server.rs:
