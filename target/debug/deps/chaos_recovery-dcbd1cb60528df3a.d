/root/repo/target/debug/deps/chaos_recovery-dcbd1cb60528df3a.d: crates/bench/benches/chaos_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_recovery-dcbd1cb60528df3a.rmeta: crates/bench/benches/chaos_recovery.rs Cargo.toml

crates/bench/benches/chaos_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
