/root/repo/target/debug/deps/nnrt-7ba1df0cc50047a9.d: src/bin/nnrt.rs

/root/repo/target/debug/deps/nnrt-7ba1df0cc50047a9: src/bin/nnrt.rs

src/bin/nnrt.rs:
