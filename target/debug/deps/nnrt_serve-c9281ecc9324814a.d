/root/repo/target/debug/deps/nnrt_serve-c9281ecc9324814a.d: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

/root/repo/target/debug/deps/nnrt_serve-c9281ecc9324814a: crates/serve/src/lib.rs crates/serve/src/chaos.rs crates/serve/src/checkpoint.rs crates/serve/src/fleet.rs crates/serve/src/job.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/chaos.rs:
crates/serve/src/checkpoint.rs:
crates/serve/src/fleet.rs:
crates/serve/src/job.rs:
crates/serve/src/store.rs:
