/root/repo/target/debug/deps/adaptive_and_serde-9f6320232df2e4fd.d: tests/adaptive_and_serde.rs

/root/repo/target/debug/deps/adaptive_and_serde-9f6320232df2e4fd: tests/adaptive_and_serde.rs

tests/adaptive_and_serde.rs:
