/root/repo/target/debug/deps/nnrt_counters-6f792645097be91b.d: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

/root/repo/target/debug/deps/nnrt_counters-6f792645097be91b: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs

crates/counters/src/lib.rs:
crates/counters/src/events.rs:
crates/counters/src/features.rs:
crates/counters/src/sampler.rs:
