/root/repo/target/debug/deps/small_machines-ca8dd000ed31145a.d: tests/small_machines.rs Cargo.toml

/root/repo/target/debug/deps/libsmall_machines-ca8dd000ed31145a.rmeta: tests/small_machines.rs Cargo.toml

tests/small_machines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
