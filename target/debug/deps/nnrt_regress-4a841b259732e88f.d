/root/repo/target/debug/deps/nnrt_regress-4a841b259732e88f.d: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_regress-4a841b259732e88f.rmeta: crates/regress/src/lib.rs crates/regress/src/feature_select.rs crates/regress/src/gbrt.rs crates/regress/src/knn.rs crates/regress/src/linalg.rs crates/regress/src/metrics.rs crates/regress/src/ols.rs crates/regress/src/par.rs crates/regress/src/theilsen.rs crates/regress/src/tree.rs Cargo.toml

crates/regress/src/lib.rs:
crates/regress/src/feature_select.rs:
crates/regress/src/gbrt.rs:
crates/regress/src/knn.rs:
crates/regress/src/linalg.rs:
crates/regress/src/metrics.rs:
crates/regress/src/ols.rs:
crates/regress/src/par.rs:
crates/regress/src/theilsen.rs:
crates/regress/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
