/root/repo/target/debug/deps/nnrt_cluster-5e9d56671e33fe8f.d: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

/root/repo/target/debug/deps/nnrt_cluster-5e9d56671e33fe8f: crates/cluster/src/lib.rs crates/cluster/src/data_parallel.rs crates/cluster/src/interconnect.rs crates/cluster/src/model_parallel.rs

crates/cluster/src/lib.rs:
crates/cluster/src/data_parallel.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/model_parallel.rs:
