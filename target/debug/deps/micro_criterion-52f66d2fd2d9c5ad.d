/root/repo/target/debug/deps/micro_criterion-52f66d2fd2d9c5ad.d: crates/bench/benches/micro_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_criterion-52f66d2fd2d9c5ad.rmeta: crates/bench/benches/micro_criterion.rs Cargo.toml

crates/bench/benches/micro_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
