/root/repo/target/debug/deps/nnrt_graph-dfb0740b74923356.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_graph-dfb0740b74923356.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/ops.rs crates/graph/src/profile.rs crates/graph/src/shape.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/ops.rs:
crates/graph/src/profile.rs:
crates/graph/src/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
