/root/repo/target/debug/deps/proptest_kernels-eb4f5aac12e53e8e.d: crates/kernels/tests/proptest_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_kernels-eb4f5aac12e53e8e.rmeta: crates/kernels/tests/proptest_kernels.rs Cargo.toml

crates/kernels/tests/proptest_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
