/root/repo/target/debug/deps/adaptive_and_serde-adf62141b25afa55.d: tests/adaptive_and_serde.rs

/root/repo/target/debug/deps/adaptive_and_serde-adf62141b25afa55: tests/adaptive_and_serde.rs

tests/adaptive_and_serde.rs:
