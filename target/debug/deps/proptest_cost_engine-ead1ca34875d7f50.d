/root/repo/target/debug/deps/proptest_cost_engine-ead1ca34875d7f50.d: crates/manycore/tests/proptest_cost_engine.rs

/root/repo/target/debug/deps/proptest_cost_engine-ead1ca34875d7f50: crates/manycore/tests/proptest_cost_engine.rs

crates/manycore/tests/proptest_cost_engine.rs:
