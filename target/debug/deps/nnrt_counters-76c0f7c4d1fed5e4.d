/root/repo/target/debug/deps/nnrt_counters-76c0f7c4d1fed5e4.d: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_counters-76c0f7c4d1fed5e4.rmeta: crates/counters/src/lib.rs crates/counters/src/events.rs crates/counters/src/features.rs crates/counters/src/sampler.rs Cargo.toml

crates/counters/src/lib.rs:
crates/counters/src/events.rs:
crates/counters/src/features.rs:
crates/counters/src/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
