/root/repo/target/debug/deps/table3_corun_strategies-093f8602381b2731.d: crates/bench/benches/table3_corun_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_corun_strategies-093f8602381b2731.rmeta: crates/bench/benches/table3_corun_strategies.rs Cargo.toml

crates/bench/benches/table3_corun_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
