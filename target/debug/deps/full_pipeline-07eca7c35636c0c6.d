/root/repo/target/debug/deps/full_pipeline-07eca7c35636c0c6.d: tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-07eca7c35636c0c6.rmeta: tests/full_pipeline.rs Cargo.toml

tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
