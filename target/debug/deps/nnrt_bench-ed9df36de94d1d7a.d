/root/repo/target/debug/deps/nnrt_bench-ed9df36de94d1d7a.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libnnrt_bench-ed9df36de94d1d7a.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libnnrt_bench-ed9df36de94d1d7a.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
