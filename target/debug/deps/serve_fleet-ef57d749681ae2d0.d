/root/repo/target/debug/deps/serve_fleet-ef57d749681ae2d0.d: tests/serve_fleet.rs

/root/repo/target/debug/deps/serve_fleet-ef57d749681ae2d0: tests/serve_fleet.rs

tests/serve_fleet.rs:
