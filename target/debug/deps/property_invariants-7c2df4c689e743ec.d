/root/repo/target/debug/deps/property_invariants-7c2df4c689e743ec.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-7c2df4c689e743ec: tests/property_invariants.rs

tests/property_invariants.rs:
