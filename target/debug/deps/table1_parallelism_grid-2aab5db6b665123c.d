/root/repo/target/debug/deps/table1_parallelism_grid-2aab5db6b665123c.d: crates/bench/benches/table1_parallelism_grid.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_parallelism_grid-2aab5db6b665123c.rmeta: crates/bench/benches/table1_parallelism_grid.rs Cargo.toml

crates/bench/benches/table1_parallelism_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
