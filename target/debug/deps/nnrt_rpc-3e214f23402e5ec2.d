/root/repo/target/debug/deps/nnrt_rpc-3e214f23402e5ec2.d: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

/root/repo/target/debug/deps/nnrt_rpc-3e214f23402e5ec2: crates/rpc/src/lib.rs crates/rpc/src/client.rs crates/rpc/src/protocol.rs crates/rpc/src/server.rs

crates/rpc/src/lib.rs:
crates/rpc/src/client.rs:
crates/rpc/src/protocol.rs:
crates/rpc/src/server.rs:
