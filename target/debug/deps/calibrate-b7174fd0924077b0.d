/root/repo/target/debug/deps/calibrate-b7174fd0924077b0.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-b7174fd0924077b0: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
