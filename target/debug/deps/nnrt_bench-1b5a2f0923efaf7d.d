/root/repo/target/debug/deps/nnrt_bench-1b5a2f0923efaf7d.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnnrt_bench-1b5a2f0923efaf7d.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/record.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/record.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
