/root/repo/target/debug/deps/table2_input_size-69c752e6c88b70a1.d: crates/bench/benches/table2_input_size.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_input_size-69c752e6c88b70a1.rmeta: crates/bench/benches/table2_input_size.rs Cargo.toml

crates/bench/benches/table2_input_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
